//! Cache geometry configuration.

use ptm_types::BLOCK_SIZE;

/// Geometry and latency of one cache level.
///
/// # Examples
///
/// ```
/// use ptm_cache::CacheConfig;
///
/// let l1 = CacheConfig::l1_default();
/// assert_eq!(l1.sets * l1.ways * 64, 16 * 1024);
/// let l2 = CacheConfig::l2_default();
/// assert_eq!(l2.sets * l2.ways * 64, 256 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Access latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// The paper's L1: 16 KiB direct-mapped, 1-cycle latency.
    pub fn l1_default() -> Self {
        CacheConfig {
            sets: 16 * 1024 / BLOCK_SIZE,
            ways: 1,
            latency: 1,
        }
    }

    /// The paper's L2: 256 KiB 4-way set-associative, 6-cycle latency.
    pub fn l2_default() -> Self {
        CacheConfig {
            sets: 256 * 1024 / BLOCK_SIZE / 4,
            ways: 4,
            latency: 6,
        }
    }

    /// A deliberately tiny cache, for tests that need to force overflows
    /// without generating huge footprints.
    pub fn tiny(sets: usize, ways: usize) -> Self {
        CacheConfig {
            sets,
            ways,
            latency: 1,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * BLOCK_SIZE
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or either dimension is zero.
    pub fn validate(&self) {
        assert!(self.sets.is_power_of_two(), "sets must be a power of two");
        assert!(self.ways > 0, "ways must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometries_match_paper() {
        let l1 = CacheConfig::l1_default();
        assert_eq!(l1.capacity_bytes(), 16 * 1024);
        assert_eq!(l1.ways, 1, "L1 is direct mapped");
        assert_eq!(l1.latency, 1);

        let l2 = CacheConfig::l2_default();
        assert_eq!(l2.capacity_bytes(), 256 * 1024);
        assert_eq!(l2.ways, 4);
        assert_eq!(l2.latency, 6);
    }

    #[test]
    fn validation_accepts_defaults() {
        CacheConfig::l1_default().validate();
        CacheConfig::l2_default().validate();
        CacheConfig::tiny(4, 2).validate();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn validation_rejects_non_power_of_two_sets() {
        CacheConfig::tiny(3, 1).validate();
    }
}
