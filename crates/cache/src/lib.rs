//! Set-associative caches, MOESI snoopy coherence and bus/memory timing.
//!
//! This crate models the on-chip memory system of the paper's evaluation
//! platform (§6.1): per-core private L1 (16 KiB direct-mapped, 1 cycle) and
//! L2 (256 KiB 4-way, 6 cycles) caches with 64-byte blocks, a snoopy MOESI
//! protocol maintained at the L2, a high-speed on-chip bus (20-cycle minimum
//! round trip) and a main-memory interface (200-cycle minimum latency, up to
//! three requests pipelined).
//!
//! Cache lines carry the transactional augmentation the paper describes
//! (§4.1): a transaction ID plus read/write bits — and, for the
//! word-granularity study of Figure 5, per-word access masks.
//!
//! Lines are *metadata only*: the functional data lives in `ptm-mem`'s
//! physical memory and in per-transaction speculative buffers owned by the
//! simulator. This keeps the coherence model small while the system as a
//! whole stays functional.
//!
//! # Examples
//!
//! ```
//! use ptm_cache::Hierarchy;
//! use ptm_types::{BlockIdx, FrameId, PhysBlock};
//!
//! let h = Hierarchy::with_default_config();
//! let b = PhysBlock::new(FrameId(1), BlockIdx(0));
//! assert!(h.probe(b).is_miss());
//! ```

pub mod array;
pub mod bus;
pub mod coherence;
pub mod config;
pub mod line;
pub mod stats;

pub use array::{CacheArray, Eviction};
pub use bus::{BusTimings, SystemBus};
pub use coherence::{
    abort_tx_lines, commit_tx_lines, flush_non_tx_lines, peek_remote_tx_use, supply, DataSource,
    RemoteTxUse, SupplyOutcome,
};
pub use config::CacheConfig;
pub use line::{CacheLine, Hit, Moesi, ProbeResult, TxLineMeta};
pub use stats::CacheStats;

/// A core's private L1+L2 pair, kept inclusive (everything in L1 is in L2).
///
/// The L1 is a presence filter for timing; all coherence and transactional
/// state lives in the L2, matching the paper's platform where "coherency is
/// maintained at the L2 cache".
#[derive(Debug)]
pub struct Hierarchy {
    l1: CacheArray,
    l2: CacheArray,
    /// L1 access latency in cycles.
    pub l1_latency: u64,
    /// L2 access latency in cycles.
    pub l2_latency: u64,
}

impl Hierarchy {
    /// Builds a hierarchy with the paper's cache parameters.
    pub fn with_default_config() -> Self {
        Hierarchy::new(CacheConfig::l1_default(), CacheConfig::l2_default())
    }

    /// Builds a hierarchy from explicit configurations.
    pub fn new(l1: CacheConfig, l2: CacheConfig) -> Self {
        Hierarchy {
            l1_latency: l1.latency,
            l2_latency: l2.latency,
            l1: CacheArray::new(l1),
            l2: CacheArray::new(l2),
        }
    }

    /// Probes both levels without changing state, classifying the access.
    pub fn probe(&self, block: ptm_types::PhysBlock) -> ProbeResult {
        if self.l1.contains(block) {
            debug_assert!(self.l2.contains(block), "L1 must be inclusive in L2");
            ProbeResult::Hit(Hit::L1)
        } else if self.l2.contains(block) {
            ProbeResult::Hit(Hit::L2)
        } else {
            ProbeResult::Miss
        }
    }

    /// Latency of a hit at the given level.
    pub fn hit_latency(&self, hit: Hit) -> u64 {
        match hit {
            Hit::L1 => self.l1_latency,
            Hit::L2 => self.l1_latency + self.l2_latency,
        }
    }

    /// Read-only view of the L2 line for `block`.
    pub fn line(&self, block: ptm_types::PhysBlock) -> Option<&CacheLine> {
        self.l2.get(block)
    }

    /// Mutable view of the L2 line for `block`; promotes into L1 so that a
    /// subsequent probe is an L1 hit (models the refill on an L1 miss /
    /// L2 hit).
    pub fn touch_mut(&mut self, block: ptm_types::PhysBlock) -> Option<&mut CacheLine> {
        if self.l2.contains(block) {
            // Refill L1; its victim needs no action (inclusive, data in L2).
            let _ = self.l1.insert(CacheLine::presence(block));
            self.l2.get_mut(block)
        } else {
            None
        }
    }

    /// Inserts a freshly fetched line into L2 (and L1), returning the L2
    /// victim, if any. The caller turns transactional victims into PTM/VTM
    /// overflows.
    pub fn fill(&mut self, line: CacheLine) -> Option<Eviction> {
        let block = line.block();
        let victim = self.l2.insert(line);
        if let Some(ev) = &victim {
            // Inclusion: anything leaving L2 leaves L1 too.
            self.l1.invalidate(ev.line.block());
        }
        let _ = self.l1.insert(CacheLine::presence(block));
        victim
    }

    /// Removes a block from both levels, returning the L2 line.
    pub fn invalidate(&mut self, block: ptm_types::PhysBlock) -> Option<CacheLine> {
        self.l1.invalidate(block);
        self.l2.invalidate(block).map(|e| e.line)
    }

    /// The L2 cache statistics.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// Mutable access to the L2 statistics (the simulator records hit/miss
    /// classifications it derives from `probe`).
    pub fn l2_stats_mut(&mut self) -> &mut CacheStats {
        self.l2.stats_mut()
    }

    /// Iterates over all valid L2 lines.
    pub fn lines(&self) -> impl Iterator<Item = &CacheLine> {
        self.l2.lines()
    }

    /// Mutable iteration over all valid L2 lines.
    pub fn lines_mut(&mut self) -> impl Iterator<Item = &mut CacheLine> {
        self.l2.lines_mut()
    }

    /// Read-only view of the L1 array (the epoch executor's run-ahead
    /// overlay replays L1 set behaviour from it).
    pub fn l1(&self) -> &CacheArray {
        &self.l1
    }

    /// The L1 array (context-switch pollution needs to clear it).
    pub fn l1_mut(&mut self) -> &mut CacheArray {
        &mut self.l1
    }

    /// The L2 array (for coherence operations that need set access).
    pub fn l2_mut(&mut self) -> &mut CacheArray {
        &mut self.l2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_types::{BlockIdx, FrameId, PhysBlock};

    fn blk(frame: u32, idx: u8) -> PhysBlock {
        PhysBlock::new(FrameId(frame), BlockIdx(idx))
    }

    #[test]
    fn probe_miss_then_hit_after_fill() {
        let mut h = Hierarchy::with_default_config();
        let b = blk(3, 7);
        assert!(h.probe(b).is_miss());
        h.fill(CacheLine::new(b, Moesi::Exclusive));
        assert_eq!(h.probe(b), ProbeResult::Hit(Hit::L1));
    }

    #[test]
    fn l2_hit_after_l1_eviction_pressure() {
        // L1 is 16KB direct mapped = 256 sets; two blocks 256 blocks apart
        // in block-address space collide in L1 but not in 4-way L2.
        let mut h = Hierarchy::with_default_config();
        let a = blk(0, 0);
        let c = blk(4, 0); // 4 frames * 64 blocks = 256 blocks apart
        h.fill(CacheLine::new(a, Moesi::Exclusive));
        h.fill(CacheLine::new(c, Moesi::Exclusive));
        assert_eq!(h.probe(c), ProbeResult::Hit(Hit::L1));
        assert_eq!(
            h.probe(a),
            ProbeResult::Hit(Hit::L2),
            "a displaced from L1 only"
        );
    }

    #[test]
    fn touch_mut_promotes_to_l1() {
        let mut h = Hierarchy::with_default_config();
        let a = blk(0, 0);
        let c = blk(4, 0);
        h.fill(CacheLine::new(a, Moesi::Exclusive));
        h.fill(CacheLine::new(c, Moesi::Exclusive));
        assert_eq!(h.probe(a), ProbeResult::Hit(Hit::L2));
        h.touch_mut(a).unwrap();
        assert_eq!(h.probe(a), ProbeResult::Hit(Hit::L1));
    }

    #[test]
    fn inclusion_holds_after_l2_eviction() {
        let mut h = Hierarchy::with_default_config();
        // L2 has 1024 sets, so blocks 1024 apart collide: frames 16 apart.
        let blocks: Vec<_> = (0..5).map(|i| blk(16 * i, 0)).collect();
        for &b in &blocks {
            h.fill(CacheLine::new(b, Moesi::Exclusive));
        }
        let evicted: Vec<_> = blocks.iter().filter(|b| h.probe(**b).is_miss()).collect();
        assert_eq!(evicted.len(), 1, "exactly one block evicted from L2");
    }

    #[test]
    fn invalidate_clears_both_levels() {
        let mut h = Hierarchy::with_default_config();
        let b = blk(1, 1);
        h.fill(CacheLine::new(b, Moesi::Modified));
        let line = h.invalidate(b).unwrap();
        assert_eq!(line.state(), Moesi::Modified);
        assert!(h.probe(b).is_miss());
    }

    #[test]
    fn hit_latencies_follow_config() {
        let h = Hierarchy::with_default_config();
        assert_eq!(h.hit_latency(Hit::L1), 1);
        assert_eq!(h.hit_latency(Hit::L2), 7, "L1 lookup + L2 access");
    }
}
