//! Cache and bus statistics counters.

use std::fmt;
use std::ops::AddAssign;

/// Per-cache event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand hits recorded by the simulator.
    pub hits: u64,
    /// Demand misses recorded by the simulator.
    pub misses: u64,
    /// Lines displaced by capacity/conflict.
    pub evictions: u64,
    /// Displaced lines that carried transactional state (these become
    /// PTM/VTM overflows).
    pub tx_evictions: u64,
    /// Lines invalidated by remote coherence activity.
    pub coherence_invalidations: u64,
    /// Dirty lines written back to memory.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total demand accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in [0, 1]; zero when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: Self) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.evictions += rhs.evictions;
        self.tx_evictions += rhs.tx_evictions;
        self.coherence_invalidations += rhs.coherence_invalidations;
        self.writebacks += rhs.writebacks;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} ({:.1}% miss) evictions={} (tx {}) inval={} wb={}",
            self.hits,
            self.misses,
            self.miss_ratio() * 100.0,
            self.evictions,
            self.tx_evictions,
            self.coherence_invalidations,
            self.writebacks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_handles_zero_accesses() {
        let s = CacheStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
    }

    #[test]
    fn miss_ratio_computes_fraction() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(s.accesses(), 4);
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn add_assign_accumulates_all_fields() {
        let mut a = CacheStats {
            hits: 1,
            misses: 2,
            evictions: 3,
            tx_evictions: 4,
            coherence_invalidations: 5,
            writebacks: 6,
        };
        a += a;
        assert_eq!(a.hits, 2);
        assert_eq!(a.writebacks, 12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", CacheStats::default()).is_empty());
    }
}
