//! Exhaustive MOESI transition matrix: for every remote-line state, check
//! the protocol action of a read miss and a write miss, plus multi-step
//! sharing sequences across four caches.

use ptm_cache::{peek_remote_tx_use, supply, CacheLine, DataSource, Hierarchy, Moesi};
use ptm_types::{BlockIdx, FrameId, PhysBlock, TxId, WordIdx};

fn blk(n: u64) -> PhysBlock {
    PhysBlock::new(FrameId((n / 64) as u32), BlockIdx((n % 64) as u8))
}

fn machine(n: usize) -> Vec<Hierarchy> {
    (0..n).map(|_| Hierarchy::with_default_config()).collect()
}

#[test]
fn read_miss_transition_matrix() {
    // (remote state) -> (expected remote state after, source, my state)
    let cases = [
        (
            Moesi::Modified,
            Moesi::Owned,
            DataSource::OtherCache,
            Moesi::Shared,
        ),
        (
            Moesi::Owned,
            Moesi::Owned,
            DataSource::OtherCache,
            Moesi::Shared,
        ),
        (
            Moesi::Exclusive,
            Moesi::Shared,
            DataSource::OtherCache,
            Moesi::Shared,
        ),
        (
            Moesi::Shared,
            Moesi::Shared,
            DataSource::OtherCache,
            Moesi::Shared,
        ),
    ];
    for (before, after, source, mine) in cases {
        let mut caches = machine(2);
        caches[1].fill(CacheLine::new(blk(0), before));
        let out = supply(&mut caches, 0, blk(0), false, true, false, None);
        assert_eq!(out.source, source, "remote {before}");
        assert_eq!(out.new_state, mine, "remote {before}");
        assert_eq!(
            caches[1].line(blk(0)).unwrap().state(),
            after,
            "remote {before} degraded wrong"
        );
        assert!(out.displaced_tx.is_empty());
    }
    // No remote copy: memory sources, exclusive granted.
    let mut caches = machine(2);
    let out = supply(&mut caches, 0, blk(0), false, true, false, None);
    assert_eq!(out.source, DataSource::Memory);
    assert_eq!(out.new_state, Moesi::Exclusive);
}

#[test]
fn write_miss_transition_matrix() {
    for before in [
        Moesi::Modified,
        Moesi::Owned,
        Moesi::Exclusive,
        Moesi::Shared,
    ] {
        let mut caches = machine(2);
        caches[1].fill(CacheLine::new(blk(0), before));
        let out = supply(&mut caches, 0, blk(0), true, true, false, None);
        assert_eq!(out.new_state, Moesi::Modified, "writer always gets M");
        assert!(
            caches[1].line(blk(0)).is_none(),
            "remote {before} invalidated"
        );
        assert_eq!(out.invalidations, 1);
        assert_eq!(
            out.source,
            DataSource::OtherCache,
            "any valid copy supplies"
        );
    }
}

#[test]
fn four_way_sharing_then_single_writer() {
    let mut caches = machine(4);
    // Core 0 writes (M), then cores 1..3 read in turn.
    let w = supply(&mut caches, 0, blk(0), true, true, false, None);
    caches[0].fill(CacheLine::new(blk(0), w.new_state));
    for reader in 1..4 {
        let out = supply(&mut caches, reader, blk(0), false, true, false, None);
        caches[reader].fill(CacheLine::new(blk(0), out.new_state));
        assert_eq!(out.new_state, Moesi::Shared);
    }
    assert_eq!(
        caches[0].line(blk(0)).unwrap().state(),
        Moesi::Owned,
        "first writer holds the dirty data as owner"
    );
    // Core 2 now writes: everyone else invalidated.
    let out = supply(&mut caches, 2, blk(0), true, true, false, None);
    assert_eq!(out.invalidations, 3);
    for other in [0usize, 1, 3] {
        assert!(caches[other].line(blk(0)).is_none());
    }
    assert_eq!(
        out.source,
        DataSource::OtherCache,
        "owner supplied before dying"
    );
}

#[test]
fn preserve_keeps_foreign_tx_writers_only() {
    let mut caches = machine(3);
    let mut mine = CacheLine::new(blk(0), Moesi::Modified);
    mine.tx_meta_for(TxId(7)).record_write(WordIdx(1));
    caches[1].fill(mine);
    let mut foreign = CacheLine::new(blk(0), Moesi::Modified);
    foreign.tx_meta_for(TxId(9)).record_write(WordIdx(2));
    caches[2].fill(foreign);

    // Requester is TxId(7): its own stale copy (cache 1) must be displaced,
    // the foreign word-disjoint writer (cache 2) preserved.
    let out = supply(&mut caches, 0, blk(0), true, true, true, Some(TxId(7)));
    assert_eq!(out.displaced_tx.len(), 1);
    assert_eq!(out.displaced_tx[0].tx_meta().unwrap().tx, TxId(7));
    assert!(caches[1].line(blk(0)).is_none(), "own copy displaced");
    assert!(
        caches[2].line(blk(0)).is_some(),
        "foreign co-writer preserved"
    );
}

#[test]
fn snoop_sees_word_masks() {
    let mut caches = machine(2);
    let mut line = CacheLine::new(blk(3), Moesi::Modified);
    let meta = line.tx_meta_for(TxId(1));
    meta.record_read(WordIdx(2));
    meta.record_write(WordIdx(9));
    caches[1].fill(line);

    let uses: Vec<_> = peek_remote_tx_use(&caches, 0, blk(3)).collect();
    assert_eq!(uses.len(), 1);
    let m = uses[0].meta;
    assert!(m.read_words.get(WordIdx(2)));
    assert!(m.write_words.get(WordIdx(9)));
    assert!(!m.write_words.get(WordIdx(2)));
}

#[test]
fn exclusive_denial_applies_only_to_memory_sourced_reads() {
    // With a remote shared copy, the requester gets S regardless of the
    // allow_exclusive flag; from memory, the flag decides E vs S.
    let mut caches = machine(2);
    caches[1].fill(CacheLine::new(blk(0), Moesi::Shared));
    let out = supply(&mut caches, 0, blk(0), false, true, false, None);
    assert_eq!(out.new_state, Moesi::Shared);

    let mut caches = machine(2);
    let denied = supply(&mut caches, 0, blk(1), false, false, false, None);
    assert_eq!(denied.new_state, Moesi::Shared, "PTM denied exclusivity");
    let granted = supply(&mut caches, 0, blk(2), false, true, false, None);
    assert_eq!(granted.new_state, Moesi::Exclusive);
}

#[test]
fn displaced_lines_keep_complete_metadata() {
    let mut caches = machine(2);
    let mut line = CacheLine::new(blk(0), Moesi::Modified);
    let meta = line.tx_meta_for(TxId(3));
    meta.record_read(WordIdx(0));
    meta.record_write(WordIdx(5));
    caches[1].fill(line);

    let out = supply(&mut caches, 0, blk(0), true, true, false, None);
    let d = &out.displaced_tx[0];
    let m = d.tx_meta().unwrap();
    assert_eq!(m.tx, TxId(3));
    assert!(m.read && m.write);
    assert!(m.write_words.get(WordIdx(5)));
    assert_eq!(
        d.state(),
        Moesi::Modified,
        "dirtiness travels with the line"
    );
}
