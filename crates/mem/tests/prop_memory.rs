//! Model-based property tests for the memory substrate.

use proptest::prelude::*;
use ptm_mem::{PhysicalMemory, SpecBuffers, SwapStore};
use ptm_types::{BlockIdx, FrameId, PhysAddr, PhysBlock, TxId, WordIdx, PAGE_SIZE};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum MemOp {
    Alloc,
    FreeNth(usize),
    Write {
        frame_nth: usize,
        word: usize,
        value: u32,
    },
}

fn mem_op() -> impl Strategy<Value = MemOp> {
    prop_oneof![
        3 => Just(MemOp::Alloc),
        1 => (0usize..8).prop_map(MemOp::FreeNth),
        4 => (0usize..8, 0usize..(PAGE_SIZE / 4), any::<u32>())
            .prop_map(|(f, w, v)| MemOp::Write { frame_nth: f, word: w, value: v }),
    ]
}

proptest! {
    #[test]
    fn physical_memory_matches_model(ops in prop::collection::vec(mem_op(), 0..120)) {
        let mut mem = PhysicalMemory::new(16);
        let mut live: Vec<FrameId> = Vec::new();
        let mut model: HashMap<(FrameId, usize), u32> = HashMap::new();

        for op in ops {
            match op {
                MemOp::Alloc => {
                    if let Some(f) = mem.alloc() {
                        prop_assert!(!live.contains(&f), "frame not double-allocated");
                        live.push(f);
                    } else {
                        prop_assert_eq!(live.len(), 16, "alloc only fails when full");
                    }
                }
                MemOp::FreeNth(n) => {
                    if !live.is_empty() {
                        let f = live.remove(n % live.len());
                        mem.free(f);
                        model.retain(|(frame, _), _| *frame != f);
                    }
                }
                MemOp::Write { frame_nth, word, value } => {
                    if !live.is_empty() {
                        let f = live[frame_nth % live.len()];
                        mem.write_word(PhysAddr::from_frame(f, word * 4), value);
                        model.insert((f, word), value);
                    }
                }
            }
        }

        prop_assert_eq!(mem.frames_in_use(), live.len());
        for &f in &live {
            for w in 0..(PAGE_SIZE / 4) {
                let expected = model.get(&(f, w)).copied().unwrap_or(0);
                prop_assert_eq!(mem.read_word(PhysAddr::from_frame(f, w * 4)), expected);
            }
        }
    }

    #[test]
    fn spec_buffers_match_model(
        writes in prop::collection::vec(
            (0u64..3, 0u32..4, 0u8..16, any::<u32>()), 0..80
        )
    ) {
        let mut bufs = SpecBuffers::new();
        let mut mem = PhysicalMemory::new(8);
        let frames: Vec<FrameId> = (0..4).map(|_| mem.alloc().unwrap()).collect();
        // Model: (tx, block, word) -> value for written words.
        let mut model: HashMap<(u64, u32, u8), u32> = HashMap::new();

        for (tx, fr, word, value) in writes {
            let block = PhysBlock::new(frames[fr as usize], BlockIdx(0));
            let committed = mem.read_block(block);
            bufs.write_word(TxId(tx), block, WordIdx(word), value, || committed);
            model.insert((tx, fr, word), value);
        }

        for ((tx, fr, word), value) in &model {
            let block = PhysBlock::new(frames[*fr as usize], BlockIdx(0));
            prop_assert_eq!(
                bufs.read_own_word(TxId(*tx), block, WordIdx(*word)),
                Some(*value)
            );
        }

        // Unwritten words in an existing buffer read the (zero) snapshot.
        for (tx, fr, _) in model.keys() {
            let block = PhysBlock::new(frames[*fr as usize], BlockIdx(0));
            for w in 0..16u8 {
                if !model.contains_key(&(*tx, *fr, w)) {
                    prop_assert_eq!(
                        bufs.read_own_word(TxId(*tx), block, WordIdx(w)),
                        Some(0),
                        "snapshot value"
                    );
                }
            }
        }

        // Drain per transaction removes exactly that transaction's buffers.
        let tx0_blocks = bufs.blocks_of(TxId(0)).len();
        let drained = bufs.drain_tx(TxId(0));
        prop_assert_eq!(drained.len(), tx0_blocks);
        prop_assert!(bufs.blocks_of(TxId(0)).is_empty());
    }

    #[test]
    fn swap_store_round_trips(pages in prop::collection::vec(any::<u8>(), 1..12)) {
        let mut swap = SwapStore::new();
        let slots: Vec<_> = pages
            .iter()
            .map(|&tag| {
                let mut p = Box::new([0u8; PAGE_SIZE]);
                p[0] = tag;
                p[PAGE_SIZE - 1] = tag ^ 0xff;
                swap.store(p)
            })
            .collect();
        prop_assert_eq!(swap.used(), pages.len());
        for (slot, tag) in slots.into_iter().zip(pages) {
            let p = swap.load(slot);
            prop_assert_eq!(p[0], tag);
            prop_assert_eq!(p[PAGE_SIZE - 1], tag ^ 0xff);
        }
        prop_assert_eq!(swap.used(), 0);
    }
}
