//! Per-transaction speculative write buffers for *in-cache* dirty blocks.
//!
//! While a transactionally written block still sits in the cache, its
//! speculative value logically lives in that cache line. Since our cache
//! lines are metadata-only, the bytes live here instead, keyed by
//! `(transaction, physical block)`:
//!
//! * first write → the buffer snapshots the transaction's current view of
//!   the block and applies the write;
//! * overflow (dirty eviction) → the TM backend takes the buffer and writes
//!   it to the speculative memory location (home or shadow page for PTM,
//!   XADT for VTM);
//! * commit → surviving buffers are applied to the committed location;
//! * abort → buffers are discarded.
//!
//! Buffers also remember *which words* the transaction wrote, which the
//! word-granularity configurations need for selective merging.

use ptm_types::{FastMap, PhysBlock, TxId, WordIdx, WordMask, BLOCK_SIZE, WORD_SIZE};

/// A speculative snapshot of one block for one transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecBlock {
    /// The transaction's view of the block: a snapshot of the pre-write data
    /// with the transaction's writes applied.
    pub data: [u8; BLOCK_SIZE],
    /// Words this transaction actually wrote.
    pub written: WordMask,
}

impl SpecBlock {
    /// Reads a word from the speculative snapshot.
    pub fn read_word(&self, word: WordIdx) -> u32 {
        let off = word.0 as usize * WORD_SIZE;
        u32::from_le_bytes(self.data[off..off + WORD_SIZE].try_into().expect("word"))
    }
}

/// The set of live speculative buffers.
///
/// # Examples
///
/// ```
/// use ptm_mem::versions::SpecBuffers;
/// use ptm_types::{BlockIdx, FrameId, PhysBlock, TxId, WordIdx};
///
/// let mut bufs = SpecBuffers::new();
/// let block = PhysBlock::new(FrameId(0), BlockIdx(0));
/// let committed = [0u8; 64];
/// bufs.write_word(TxId(1), block, WordIdx(2), 99, || committed);
/// assert_eq!(bufs.read_own_word(TxId(1), block, WordIdx(2)), Some(99));
/// assert_eq!(bufs.read_own_word(TxId(2), block, WordIdx(2)), None);
/// ```
#[derive(Debug, Default)]
pub struct SpecBuffers {
    map: FastMap<(TxId, PhysBlock), SpecBlock>,
}

impl SpecBuffers {
    /// Creates an empty buffer set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live buffers.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if there are no live buffers.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Writes `value` into `tx`'s speculative view of `block` at `word`.
    ///
    /// On the transaction's first write to this block, `snapshot` is called
    /// to obtain the transaction's current view of the block (committed
    /// data, or the speculative location if the transaction previously
    /// overflowed a dirty version).
    pub fn write_word<F>(
        &mut self,
        tx: TxId,
        block: PhysBlock,
        word: WordIdx,
        value: u32,
        snapshot: F,
    ) where
        F: FnOnce() -> [u8; BLOCK_SIZE],
    {
        let entry = self.map.entry((tx, block)).or_insert_with(|| SpecBlock {
            data: snapshot(),
            written: WordMask::EMPTY,
        });
        let off = word.0 as usize * WORD_SIZE;
        entry.data[off..off + WORD_SIZE].copy_from_slice(&value.to_le_bytes());
        entry.written.set(word);
    }

    /// Reads a word from `tx`'s own speculative buffer for `block`, if the
    /// buffer exists. (The buffer is a consistent snapshot, so reads of
    /// unwritten words are also served from it — only sound when no other
    /// writer can commit into the block, i.e. block-granularity conflicts.)
    pub fn read_own_word(&self, tx: TxId, block: PhysBlock, word: WordIdx) -> Option<u32> {
        self.map.get(&(tx, block)).map(|b| b.read_word(word))
    }

    /// Reads a word from `tx`'s buffer only if the transaction actually
    /// *wrote* that word. Unwritten words must be read from the coherent
    /// view instead — under word-granularity conflict detection a
    /// disjoint-word co-writer may legitimately commit new values for them
    /// while this buffer's snapshot ages.
    pub fn read_own_written_word(&self, tx: TxId, block: PhysBlock, word: WordIdx) -> Option<u32> {
        self.map
            .get(&(tx, block))
            .filter(|b| b.written.get(word))
            .map(|b| b.read_word(word))
    }

    /// Returns `true` if `tx` has a buffer for `block`.
    pub fn has(&self, tx: TxId, block: PhysBlock) -> bool {
        self.map.contains_key(&(tx, block))
    }

    /// Removes and returns `tx`'s buffer for `block` (dirty eviction: the
    /// data moves to the speculative memory location).
    pub fn take(&mut self, tx: TxId, block: PhysBlock) -> Option<SpecBlock> {
        self.map.remove(&(tx, block))
    }

    /// Removes and returns all of `tx`'s buffers (commit applies them;
    /// abort discards them). Order is unspecified.
    pub fn drain_tx(&mut self, tx: TxId) -> Vec<(PhysBlock, SpecBlock)> {
        let keys: Vec<_> = self.map.keys().filter(|(t, _)| *t == tx).copied().collect();
        keys.into_iter()
            .map(|k| (k.1, self.map.remove(&k).expect("key just listed")))
            .collect()
    }

    /// Blocks for which `tx` currently holds a buffer.
    pub fn blocks_of(&self, tx: TxId) -> Vec<PhysBlock> {
        self.map
            .keys()
            .filter(|(t, _)| *t == tx)
            .map(|(_, b)| *b)
            .collect()
    }
}

/// Applies the written words of a speculative snapshot onto `target`.
///
/// Used at commit when merging word-granular writers: only the words the
/// transaction wrote are copied, so concurrent disjoint-word writers do not
/// clobber each other.
pub fn apply_written_words(target: &mut [u8; BLOCK_SIZE], spec: &SpecBlock) {
    for w in spec.written.iter() {
        let off = w.0 as usize * WORD_SIZE;
        target[off..off + WORD_SIZE].copy_from_slice(&spec.data[off..off + WORD_SIZE]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_types::{BlockIdx, FrameId};

    fn blk(n: u32) -> PhysBlock {
        PhysBlock::new(FrameId(n), BlockIdx(0))
    }

    #[test]
    fn first_write_snapshots_then_applies() {
        let mut bufs = SpecBuffers::new();
        let mut committed = [0u8; BLOCK_SIZE];
        committed[0] = 0xaa; // word 0 = 0xaa
        bufs.write_word(TxId(1), blk(0), WordIdx(1), 7, || committed);
        // Word 0 still shows the snapshot; word 1 shows the write.
        assert_eq!(bufs.read_own_word(TxId(1), blk(0), WordIdx(0)), Some(0xaa));
        assert_eq!(bufs.read_own_word(TxId(1), blk(0), WordIdx(1)), Some(7));
    }

    #[test]
    fn snapshot_taken_only_once() {
        let mut bufs = SpecBuffers::new();
        let mut calls = 0;
        bufs.write_word(TxId(1), blk(0), WordIdx(0), 1, || {
            calls += 1;
            [0u8; BLOCK_SIZE]
        });
        bufs.write_word(TxId(1), blk(0), WordIdx(1), 2, || {
            calls += 1;
            [0u8; BLOCK_SIZE]
        });
        assert_eq!(calls, 1, "snapshot only on first write");
    }

    #[test]
    fn buffers_are_per_transaction() {
        let mut bufs = SpecBuffers::new();
        bufs.write_word(TxId(1), blk(0), WordIdx(0), 1, || [0u8; BLOCK_SIZE]);
        assert!(bufs.read_own_word(TxId(2), blk(0), WordIdx(0)).is_none());
        assert!(bufs.has(TxId(1), blk(0)));
        assert!(!bufs.has(TxId(2), blk(0)));
    }

    #[test]
    fn take_removes_buffer() {
        let mut bufs = SpecBuffers::new();
        bufs.write_word(TxId(1), blk(0), WordIdx(3), 42, || [0u8; BLOCK_SIZE]);
        let spec = bufs.take(TxId(1), blk(0)).unwrap();
        assert_eq!(spec.read_word(WordIdx(3)), 42);
        assert!(spec.written.get(WordIdx(3)));
        assert!(bufs.is_empty());
    }

    #[test]
    fn drain_tx_takes_only_that_transaction() {
        let mut bufs = SpecBuffers::new();
        bufs.write_word(TxId(1), blk(0), WordIdx(0), 1, || [0u8; BLOCK_SIZE]);
        bufs.write_word(TxId(1), blk(1), WordIdx(0), 2, || [0u8; BLOCK_SIZE]);
        bufs.write_word(TxId(2), blk(2), WordIdx(0), 3, || [0u8; BLOCK_SIZE]);
        let drained = bufs.drain_tx(TxId(1));
        assert_eq!(drained.len(), 2);
        assert_eq!(bufs.len(), 1);
        assert!(bufs.has(TxId(2), blk(2)));
    }

    #[test]
    fn apply_written_words_is_selective() {
        let spec = {
            let mut bufs = SpecBuffers::new();
            bufs.write_word(TxId(1), blk(0), WordIdx(1), 0xbeef, || [0x11u8; BLOCK_SIZE]);
            bufs.take(TxId(1), blk(0)).unwrap()
        };
        let mut target = [0x22u8; BLOCK_SIZE];
        apply_written_words(&mut target, &spec);
        // Word 1 updated; everything else untouched (NOT the 0x11 snapshot).
        assert_eq!(&target[4..8], &0xbeefu32.to_le_bytes());
        assert_eq!(target[0], 0x22);
        assert_eq!(target[8], 0x22);
    }

    #[test]
    fn blocks_of_lists_buffers() {
        let mut bufs = SpecBuffers::new();
        bufs.write_word(TxId(1), blk(5), WordIdx(0), 1, || [0u8; BLOCK_SIZE]);
        assert_eq!(bufs.blocks_of(TxId(1)), vec![blk(5)]);
        assert!(bufs.blocks_of(TxId(9)).is_empty());
    }
}
