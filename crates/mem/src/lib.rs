//! Simulated physical memory, page tables and swap.
//!
//! This crate is the memory substrate under the PTM reproduction. Unlike a
//! pure timing model it is *functional*: every frame holds real bytes, so the
//! transactional-memory layers above can keep genuine speculative and
//! committed versions on home and shadow pages, and the test suite can check
//! value-level serializability rather than just event counts.
//!
//! * [`PhysicalMemory`] — a frame store with an allocator; frames hold 4 KiB
//!   of data addressable by word, block or page.
//! * [`PageTable`] — per-process virtual→physical translation with
//!   present/swapped states, exactly the split PTM's SPT (present) and SIT
//!   (swapped) tables key off.
//! * [`SwapStore`] — the backing store pages are swapped to; slots are the
//!   paper's "swap index numbers".
//! * [`layout`] — a small address-space builder the workloads use to place
//!   their arrays on page boundaries.
//!
//! # Examples
//!
//! ```
//! use ptm_mem::PhysicalMemory;
//! use ptm_types::PhysAddr;
//!
//! let mut mem = PhysicalMemory::new(16);
//! let frame = mem.alloc().expect("frames available");
//! let addr = PhysAddr::from_frame(frame, 128);
//! mem.write_word(addr, 0xdead_beef);
//! assert_eq!(mem.read_word(addr), 0xdead_beef);
//! ```

pub mod layout;
pub mod logdev;
pub mod page_table;
pub mod physical;
pub mod swap;
pub mod versions;

pub use layout::{Layout, LayoutBuilder, Region};
pub use logdev::{LogAppendError, LogDevConfig, LogDevStats, LogDevice, LogFaultPlan, LogImage};
pub use page_table::{PageTable, Pte};
pub use physical::PhysicalMemory;
pub use swap::SwapStore;
pub use versions::{SpecBlock, SpecBuffers};
