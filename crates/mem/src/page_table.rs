//! Per-process page tables.

use ptm_types::{FastMap, FrameId, PhysAddr, SwapSlot, VirtAddr, Vpn};
use std::fmt;

/// A page-table entry: where a virtual page currently lives.
///
/// The split mirrors what PTM keys off: a *present* page is indexed into the
/// Shadow Page Table by its frame number; a *swapped* page is indexed into
/// the Swap Index Table by its swap slot (the paper's "swap index number",
/// §3.5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pte {
    /// The page is resident in the given frame.
    Present(FrameId),
    /// The page has been swapped out to the given swap slot.
    Swapped(SwapSlot),
}

/// A per-process virtual→physical page table.
///
/// # Examples
///
/// ```
/// use ptm_mem::{PageTable, Pte};
/// use ptm_types::{FrameId, VirtAddr, Vpn};
///
/// let mut pt = PageTable::new();
/// pt.map(Vpn(2), FrameId(7));
/// let pa = pt.translate(VirtAddr::new(0x2010)).unwrap();
/// assert_eq!(pa.frame(), FrameId(7));
/// assert_eq!(pa.page_offset(), 0x10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    entries: FastMap<Vpn, Pte>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps `vpn` to a resident frame, replacing any previous entry.
    pub fn map(&mut self, vpn: Vpn, frame: FrameId) {
        self.entries.insert(vpn, Pte::Present(frame));
    }

    /// Marks `vpn` swapped out to `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the page was not previously mapped — a page must exist to
    /// be swapped.
    pub fn mark_swapped(&mut self, vpn: Vpn, slot: SwapSlot) {
        let e = self.entries.get_mut(&vpn).expect("swapping unmapped page");
        *e = Pte::Swapped(slot);
    }

    /// Marks `vpn` resident again in `frame` (swap-in).
    ///
    /// # Panics
    ///
    /// Panics if the page was not previously swapped out.
    pub fn mark_resident(&mut self, vpn: Vpn, frame: FrameId) {
        let e = self
            .entries
            .get_mut(&vpn)
            .expect("swapping in unmapped page");
        assert!(
            matches!(e, Pte::Swapped(_)),
            "page {vpn} is already resident"
        );
        *e = Pte::Present(frame);
    }

    /// Removes a mapping entirely, returning its last state.
    pub fn unmap(&mut self, vpn: Vpn) -> Option<Pte> {
        self.entries.remove(&vpn)
    }

    /// Looks up the entry for `vpn`.
    pub fn entry(&self, vpn: Vpn) -> Option<Pte> {
        self.entries.get(&vpn).copied()
    }

    /// Translates a full virtual address, or `None` if the page is unmapped
    /// or swapped out (the caller must fault it in).
    pub fn translate(&self, va: VirtAddr) -> Option<PhysAddr> {
        match self.entries.get(&va.vpn())? {
            Pte::Present(frame) => Some(PhysAddr::from_frame(*frame, va.page_offset())),
            Pte::Swapped(_) => None,
        }
    }

    /// Number of mapped pages (resident or swapped).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all mappings in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, Pte)> + '_ {
        self.entries.iter().map(|(k, v)| (*k, *v))
    }

    /// All resident pages, as (vpn, frame) pairs, in unspecified order.
    pub fn resident_pages(&self) -> impl Iterator<Item = (Vpn, FrameId)> + '_ {
        self.entries.iter().filter_map(|(vpn, pte)| match pte {
            Pte::Present(f) => Some((*vpn, *f)),
            Pte::Swapped(_) => None,
        })
    }
}

impl fmt::Display for PageTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page-table[{} pages]", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translate_present_page() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), FrameId(42));
        let pa = pt.translate(VirtAddr::new(0x1ffc)).unwrap();
        assert_eq!(pa.frame(), FrameId(42));
        assert_eq!(pa.page_offset(), 0xffc);
    }

    #[test]
    fn translate_unmapped_is_none() {
        let pt = PageTable::new();
        assert!(pt.translate(VirtAddr::new(0x5000)).is_none());
    }

    #[test]
    fn swap_out_then_in() {
        let mut pt = PageTable::new();
        pt.map(Vpn(3), FrameId(1));
        pt.mark_swapped(Vpn(3), SwapSlot(9));
        assert_eq!(pt.entry(Vpn(3)), Some(Pte::Swapped(SwapSlot(9))));
        assert!(pt.translate(Vpn(3).base()).is_none(), "swapped page faults");
        pt.mark_resident(Vpn(3), FrameId(5));
        assert_eq!(pt.translate(Vpn(3).base()).unwrap().frame(), FrameId(5));
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn swap_in_of_resident_page_panics() {
        let mut pt = PageTable::new();
        pt.map(Vpn(0), FrameId(0));
        pt.mark_resident(Vpn(0), FrameId(1));
    }

    #[test]
    fn resident_pages_excludes_swapped() {
        let mut pt = PageTable::new();
        pt.map(Vpn(0), FrameId(0));
        pt.map(Vpn(1), FrameId(1));
        pt.mark_swapped(Vpn(1), SwapSlot(0));
        let resident: Vec<_> = pt.resident_pages().collect();
        assert_eq!(resident, vec![(Vpn(0), FrameId(0))]);
        assert_eq!(pt.len(), 2);
    }

    #[test]
    fn unmap_returns_state() {
        let mut pt = PageTable::new();
        pt.map(Vpn(4), FrameId(4));
        assert_eq!(pt.unmap(Vpn(4)), Some(Pte::Present(FrameId(4))));
        assert_eq!(pt.unmap(Vpn(4)), None);
        assert!(pt.is_empty());
    }
}
