//! The swap backing store.

use ptm_types::{SwapSlot, PAGE_SIZE};
use std::fmt;

type PageData = Box<[u8; PAGE_SIZE]>;

/// A simulated swap file: page-sized slots identified by [`SwapSlot`].
///
/// The paper's "swap index number" is our slot number; PTM's Swap Index
/// Table (SIT) is indexed by it when a home page is paged out (§3.5.1).
/// Home and shadow pages are always swapped *together* — the PTM paging
/// layer enforces that; the store itself is policy-free.
///
/// # Examples
///
/// ```
/// use ptm_mem::SwapStore;
///
/// let mut swap = SwapStore::new();
/// let mut page = Box::new([0u8; 4096]);
/// page[0] = 0x7f;
/// let slot = swap.store(page);
/// let back = swap.load(slot);
/// assert_eq!(back[0], 0x7f);
/// ```
#[derive(Default, Clone)]
pub struct SwapStore {
    slots: Vec<Option<PageData>>,
    free: Vec<SwapSlot>,
    peak_used: usize,
}

impl fmt::Debug for SwapStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SwapStore")
            .field("used", &self.used())
            .field("peak_used", &self.peak_used)
            .finish()
    }
}

impl SwapStore {
    /// Creates an empty swap store. Capacity grows on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of occupied slots.
    pub fn used(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Highest number of simultaneously occupied slots.
    pub fn peak_used(&self) -> usize {
        self.peak_used
    }

    /// Stores a page, returning its slot.
    pub fn store(&mut self, data: PageData) -> SwapSlot {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                SwapSlot((self.slots.len() - 1) as u32)
            }
        };
        self.slots[slot.0 as usize] = Some(data);
        self.peak_used = self.peak_used.max(self.used());
        slot
    }

    /// Removes and returns the page at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty.
    pub fn load(&mut self, slot: SwapSlot) -> PageData {
        let data = self
            .slots
            .get_mut(slot.0 as usize)
            .unwrap_or_else(|| panic!("{slot} out of range"))
            .take()
            .unwrap_or_else(|| panic!("{slot} is empty"));
        self.free.push(slot);
        data
    }

    /// Copies the page at `slot` without freeing the slot (lazy cleanup of
    /// swapped transactional pages reads images in place).
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty.
    pub fn peek(&self, slot: SwapSlot) -> PageData {
        self.slots
            .get(slot.0 as usize)
            .unwrap_or_else(|| panic!("{slot} out of range"))
            .as_ref()
            .unwrap_or_else(|| panic!("{slot} is empty"))
            .clone()
    }

    /// Overwrites the page at `slot` in place (the slot keeps its identity,
    /// so SIT entries and page tables referencing it stay valid).
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty.
    pub fn update(&mut self, slot: SwapSlot, data: PageData) {
        let s = self
            .slots
            .get_mut(slot.0 as usize)
            .unwrap_or_else(|| panic!("{slot} out of range"));
        assert!(s.is_some(), "{slot} is empty");
        *s = Some(data);
    }

    /// Returns `true` if `slot` currently holds a page.
    pub fn is_occupied(&self, slot: SwapSlot) -> bool {
        self.slots
            .get(slot.0 as usize)
            .map(|s| s.is_some())
            .unwrap_or(false)
    }

    /// Discards the page at `slot` without reading it (used when a shadow
    /// page is garbage-collected while swapped).
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty.
    pub fn discard(&mut self, slot: SwapSlot) {
        let _ = self.load(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(tag: u8) -> PageData {
        let mut p = Box::new([0u8; PAGE_SIZE]);
        p[17] = tag;
        p
    }

    #[test]
    fn store_load_round_trip() {
        let mut swap = SwapStore::new();
        let s1 = swap.store(page(1));
        let s2 = swap.store(page(2));
        assert_ne!(s1, s2);
        assert_eq!(swap.load(s1)[17], 1);
        assert_eq!(swap.load(s2)[17], 2);
        assert_eq!(swap.used(), 0);
    }

    #[test]
    fn slots_are_reused_after_load() {
        let mut swap = SwapStore::new();
        let s1 = swap.store(page(1));
        swap.discard(s1);
        let s2 = swap.store(page(2));
        assert_eq!(s1, s2, "freed slot reused");
    }

    #[test]
    fn peek_and_update_keep_the_slot() {
        let mut swap = SwapStore::new();
        let s = swap.store(page(3));
        assert_eq!(swap.peek(s)[17], 3);
        assert!(swap.is_occupied(s), "peek does not free");
        swap.update(s, page(4));
        assert_eq!(swap.load(s)[17], 4);
    }

    #[test]
    #[should_panic(expected = "is empty")]
    fn updating_empty_slot_panics() {
        let mut swap = SwapStore::new();
        let s = swap.store(page(0));
        swap.discard(s);
        swap.update(s, page(1));
    }

    #[test]
    fn occupancy_tracking() {
        let mut swap = SwapStore::new();
        let s = swap.store(page(9));
        assert!(swap.is_occupied(s));
        swap.discard(s);
        assert!(!swap.is_occupied(s));
        assert_eq!(swap.peak_used(), 1);
    }

    #[test]
    #[should_panic(expected = "is empty")]
    fn loading_empty_slot_panics() {
        let mut swap = SwapStore::new();
        let s = swap.store(page(0));
        swap.discard(s);
        let _ = swap.load(s);
    }
}
