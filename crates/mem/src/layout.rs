//! Address-space layout builder for workloads.
//!
//! Workloads place named arrays ("regions") in a virtual address space so
//! their generated operation streams use stable, page-aligned addresses.
//! Keeping the builder here (next to the paging machinery) lets tests reason
//! about page footprints without pulling in the whole simulator.

use ptm_types::{VirtAddr, Vpn, PAGE_SIZE, WORD_SIZE};
use std::collections::HashMap;
use std::fmt;

/// A named, page-aligned range of virtual memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    name: String,
    base: VirtAddr,
    bytes: usize,
}

impl Region {
    /// The region's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The region's base address (always page-aligned).
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// The region's size in bytes (always a multiple of the page size).
    pub fn len(&self) -> usize {
        self.bytes
    }

    /// Returns `true` if the region is empty (it never is; regions round up
    /// to at least one page).
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }

    /// Address of the `i`-th 4-byte word element of the region.
    ///
    /// # Panics
    ///
    /// Panics if the element is outside the region.
    pub fn word(&self, i: usize) -> VirtAddr {
        let off = i * WORD_SIZE;
        assert!(
            off < self.bytes,
            "element {i} outside region '{}'",
            self.name
        );
        self.base.offset(off as u64)
    }

    /// Number of 4-byte word elements in the region.
    pub fn words(&self) -> usize {
        self.bytes / WORD_SIZE
    }

    /// The virtual pages this region spans.
    pub fn pages(&self) -> impl Iterator<Item = Vpn> + '_ {
        let first = self.base.vpn().0;
        let count = (self.bytes / PAGE_SIZE) as u64;
        (first..first + count).map(Vpn)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{} ({} B)", self.name, self.base, self.bytes)
    }
}

/// Builds a [`Layout`] by stacking page-aligned regions.
///
/// # Examples
///
/// ```
/// use ptm_mem::LayoutBuilder;
///
/// let mut b = LayoutBuilder::new();
/// b.region("data", 10_000); // rounds up to 3 pages
/// b.region("locks", 64);
/// let layout = b.build();
/// let data = layout.region("data").unwrap();
/// assert_eq!(data.len(), 3 * 4096);
/// assert_ne!(data.base(), layout.region("locks").unwrap().base());
/// ```
#[derive(Debug, Default)]
pub struct LayoutBuilder {
    regions: Vec<Region>,
    cursor: u64,
}

impl LayoutBuilder {
    /// Creates a builder whose first region starts at page 1 (page 0 is left
    /// unmapped so that a zero address is always a bug).
    pub fn new() -> Self {
        LayoutBuilder {
            regions: Vec::new(),
            cursor: PAGE_SIZE as u64,
        }
    }

    /// Appends a region of at least `bytes` bytes (rounded up to whole
    /// pages), returning its base address.
    ///
    /// # Panics
    ///
    /// Panics if a region with the same name already exists.
    pub fn region(&mut self, name: &str, bytes: usize) -> VirtAddr {
        assert!(
            !self.regions.iter().any(|r| r.name == name),
            "duplicate region '{name}'"
        );
        let pages = bytes.div_ceil(PAGE_SIZE).max(1);
        let base = VirtAddr::new(self.cursor);
        self.cursor += (pages * PAGE_SIZE) as u64;
        self.regions.push(Region {
            name: name.to_owned(),
            base,
            bytes: pages * PAGE_SIZE,
        });
        base
    }

    /// Finalizes the layout.
    pub fn build(self) -> Layout {
        let index = self
            .regions
            .iter()
            .enumerate()
            .map(|(i, r)| (r.name.clone(), i))
            .collect();
        Layout {
            regions: self.regions,
            index,
        }
    }
}

/// A finished address-space layout: an ordered set of named regions.
#[derive(Debug, Default)]
pub struct Layout {
    regions: Vec<Region>,
    index: HashMap<String, usize>,
}

impl Layout {
    /// Looks up a region by name.
    pub fn region(&self, name: &str) -> Option<&Region> {
        self.index.get(name).map(|&i| &self.regions[i])
    }

    /// Iterates over regions in layout order.
    pub fn iter(&self) -> impl Iterator<Item = &Region> {
        self.regions.iter()
    }

    /// Total footprint in pages.
    pub fn total_pages(&self) -> usize {
        self.regions.iter().map(|r| r.len() / PAGE_SIZE).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_page_aligned_and_disjoint() {
        let mut b = LayoutBuilder::new();
        b.region("a", 1);
        b.region("b", PAGE_SIZE + 1);
        let l = b.build();
        let a = l.region("a").unwrap();
        let bb = l.region("b").unwrap();
        assert_eq!(a.base().page_offset(), 0);
        assert_eq!(bb.base().page_offset(), 0);
        assert_eq!(a.len(), PAGE_SIZE);
        assert_eq!(bb.len(), 2 * PAGE_SIZE);
        assert_eq!(bb.base().0, a.base().0 + PAGE_SIZE as u64);
    }

    #[test]
    fn page_zero_is_never_used() {
        let mut b = LayoutBuilder::new();
        b.region("a", 1);
        let l = b.build();
        assert!(l.region("a").unwrap().base().0 >= PAGE_SIZE as u64);
    }

    #[test]
    fn word_addressing() {
        let mut b = LayoutBuilder::new();
        b.region("arr", 64 * WORD_SIZE);
        let l = b.build();
        let arr = l.region("arr").unwrap();
        assert_eq!(arr.word(0), arr.base());
        assert_eq!(arr.word(3).0, arr.base().0 + 12);
        assert_eq!(arr.words(), PAGE_SIZE / WORD_SIZE);
    }

    #[test]
    #[should_panic(expected = "outside region")]
    fn word_out_of_range_panics() {
        let mut b = LayoutBuilder::new();
        b.region("arr", 16);
        let l = b.build();
        let _ = l.region("arr").unwrap().word(PAGE_SIZE / WORD_SIZE);
    }

    #[test]
    #[should_panic(expected = "duplicate region")]
    fn duplicate_region_panics() {
        let mut b = LayoutBuilder::new();
        b.region("x", 1);
        b.region("x", 1);
    }

    #[test]
    fn pages_iterator_covers_region() {
        let mut b = LayoutBuilder::new();
        b.region("big", 3 * PAGE_SIZE);
        let l = b.build();
        let pages: Vec<_> = l.region("big").unwrap().pages().collect();
        assert_eq!(pages.len(), 3);
        assert_eq!(pages[0], Vpn(1));
        assert_eq!(l.total_pages(), 3);
    }
}
