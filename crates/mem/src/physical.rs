//! The physical frame store.

use ptm_types::{FrameId, PhysAddr, PhysBlock, BLOCK_SIZE, PAGE_SIZE, WORD_SIZE};
use std::fmt;

/// A single 4 KiB page frame's data.
type FrameData = Box<[u8; PAGE_SIZE]>;

fn zeroed_frame() -> FrameData {
    vec![0u8; PAGE_SIZE]
        .into_boxed_slice()
        .try_into()
        .expect("PAGE_SIZE sized")
}

/// Simulated physical memory: a bounded pool of 4 KiB frames with real data.
///
/// Frames are allocated zeroed and may be freed and reused; PTM allocates
/// *shadow* frames from the same pool as ordinary home frames, which is how
/// Table 1's "conservative"/"ideal" page-overhead columns become measurable
/// here.
///
/// # Examples
///
/// ```
/// use ptm_mem::PhysicalMemory;
///
/// let mut mem = PhysicalMemory::new(4);
/// let a = mem.alloc().unwrap();
/// let b = mem.alloc().unwrap();
/// assert_ne!(a, b);
/// assert_eq!(mem.frames_in_use(), 2);
/// mem.free(a);
/// assert_eq!(mem.frames_in_use(), 1);
/// ```
#[derive(Clone)]
pub struct PhysicalMemory {
    frames: Vec<Option<FrameData>>,
    free: Vec<FrameId>,
    high_water: usize,
}

impl fmt::Debug for PhysicalMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhysicalMemory")
            .field("capacity", &self.frames.len())
            .field("in_use", &self.frames_in_use())
            .field("high_water", &self.high_water)
            .finish()
    }
}

impl PhysicalMemory {
    /// Creates a memory with `capacity` frames, all free.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "memory needs at least one frame");
        let free = (0..capacity as u32).rev().map(FrameId).collect();
        PhysicalMemory {
            frames: (0..capacity).map(|_| None).collect(),
            free,
            high_water: 0,
        }
    }

    /// Total number of frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Number of currently allocated frames.
    pub fn frames_in_use(&self) -> usize {
        self.frames.len() - self.free.len()
    }

    /// Highest number of frames that were ever simultaneously allocated.
    ///
    /// Used for the "ideal" shadow-page overhead column of Table 1.
    pub fn high_water_mark(&self) -> usize {
        self.high_water
    }

    /// Number of frames currently free — lets exhaustion-aware callers
    /// pre-check an allocation burst without mutating the pool.
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }

    /// Allocates a zeroed frame, or `None` if memory is exhausted.
    pub fn alloc(&mut self) -> Option<FrameId> {
        let id = self.free.pop()?;
        self.frames[id.0 as usize] = Some(zeroed_frame());
        self.high_water = self.high_water.max(self.frames_in_use());
        Some(id)
    }

    /// Frees a frame, returning it to the pool.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not currently allocated.
    pub fn free(&mut self, frame: FrameId) {
        let slot = self
            .frames
            .get_mut(frame.0 as usize)
            .unwrap_or_else(|| panic!("{frame} out of range"));
        assert!(slot.is_some(), "double free of {frame}");
        *slot = None;
        self.free.push(frame);
    }

    /// Returns `true` if `frame` is currently allocated.
    pub fn is_allocated(&self, frame: FrameId) -> bool {
        self.frames
            .get(frame.0 as usize)
            .map(|s| s.is_some())
            .unwrap_or(false)
    }

    fn data(&self, frame: FrameId) -> &[u8; PAGE_SIZE] {
        self.frames
            .get(frame.0 as usize)
            .and_then(|s| s.as_deref())
            .unwrap_or_else(|| panic!("access to unallocated {frame}"))
    }

    fn data_mut(&mut self, frame: FrameId) -> &mut [u8; PAGE_SIZE] {
        self.frames
            .get_mut(frame.0 as usize)
            .and_then(|s| s.as_deref_mut())
            .unwrap_or_else(|| panic!("access to unallocated {frame}"))
    }

    /// Reads the 4-byte word at `addr` (little-endian, word-aligned).
    ///
    /// # Panics
    ///
    /// Panics if the frame is unallocated.
    pub fn read_word(&self, addr: PhysAddr) -> u32 {
        let off = addr.page_offset() & !(WORD_SIZE - 1);
        let d = self.data(addr.frame());
        u32::from_le_bytes(d[off..off + WORD_SIZE].try_into().expect("word slice"))
    }

    /// Writes the 4-byte word at `addr` (little-endian, word-aligned).
    ///
    /// # Panics
    ///
    /// Panics if the frame is unallocated.
    pub fn write_word(&mut self, addr: PhysAddr, value: u32) {
        let off = addr.page_offset() & !(WORD_SIZE - 1);
        let d = self.data_mut(addr.frame());
        d[off..off + WORD_SIZE].copy_from_slice(&value.to_le_bytes());
    }

    /// Copies out the 64-byte block at `block`.
    pub fn read_block(&self, block: PhysBlock) -> [u8; BLOCK_SIZE] {
        let off = block.addr().page_offset();
        let d = self.data(block.frame());
        d[off..off + BLOCK_SIZE].try_into().expect("block slice")
    }

    /// Overwrites the 64-byte block at `block`.
    pub fn write_block(&mut self, block: PhysBlock, bytes: &[u8; BLOCK_SIZE]) {
        let off = block.addr().page_offset();
        let d = self.data_mut(block.frame());
        d[off..off + BLOCK_SIZE].copy_from_slice(bytes);
    }

    /// Copies one block to another — the primitive behind Copy-PTM's
    /// eviction backup and abort restore, and VTM's commit copy-back.
    pub fn copy_block(&mut self, src: PhysBlock, dst: PhysBlock) {
        let bytes = self.read_block(src);
        self.write_block(dst, &bytes);
    }

    /// Copies out a whole frame's data (used by swap-out).
    pub fn read_frame(&self, frame: FrameId) -> Box<[u8; PAGE_SIZE]> {
        Box::new(*self.data(frame))
    }

    /// Overwrites a whole frame's data (used by swap-in).
    pub fn write_frame(&mut self, frame: FrameId, bytes: &[u8; PAGE_SIZE]) {
        *self.data_mut(frame) = *bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_types::{BlockIdx, FrameId};

    #[test]
    fn alloc_free_cycle() {
        let mut mem = PhysicalMemory::new(2);
        let a = mem.alloc().unwrap();
        let b = mem.alloc().unwrap();
        assert!(mem.alloc().is_none(), "pool exhausted");
        mem.free(a);
        let c = mem.alloc().unwrap();
        assert_eq!(c, a, "freed frame is reused");
        assert!(mem.is_allocated(b));
    }

    #[test]
    fn frames_allocated_zeroed_even_after_reuse() {
        let mut mem = PhysicalMemory::new(1);
        let f = mem.alloc().unwrap();
        mem.write_word(PhysAddr::from_frame(f, 0), 99);
        mem.free(f);
        let f2 = mem.alloc().unwrap();
        assert_eq!(mem.read_word(PhysAddr::from_frame(f2, 0)), 0);
    }

    #[test]
    fn word_read_write_round_trip() {
        let mut mem = PhysicalMemory::new(1);
        let f = mem.alloc().unwrap();
        for i in 0..(PAGE_SIZE / WORD_SIZE) as u64 {
            mem.write_word(PhysAddr::from_frame(f, (i as usize) * WORD_SIZE), i as u32);
        }
        for i in 0..(PAGE_SIZE / WORD_SIZE) as u64 {
            assert_eq!(
                mem.read_word(PhysAddr::from_frame(f, (i as usize) * WORD_SIZE)),
                i as u32
            );
        }
    }

    #[test]
    fn unaligned_word_access_uses_containing_word() {
        let mut mem = PhysicalMemory::new(1);
        let f = mem.alloc().unwrap();
        mem.write_word(PhysAddr::from_frame(f, 8), 7);
        assert_eq!(mem.read_word(PhysAddr::from_frame(f, 11)), 7);
    }

    #[test]
    fn block_copy_moves_data() {
        let mut mem = PhysicalMemory::new(2);
        let a = mem.alloc().unwrap();
        let b = mem.alloc().unwrap();
        let src = PhysBlock::new(a, BlockIdx(5));
        let dst = PhysBlock::new(b, BlockIdx(5));
        mem.write_word(src.addr(), 0xabcd);
        mem.copy_block(src, dst);
        assert_eq!(mem.read_word(dst.addr()), 0xabcd);
        // Source unchanged.
        assert_eq!(mem.read_word(src.addr()), 0xabcd);
    }

    #[test]
    fn frame_read_write_round_trip() {
        let mut mem = PhysicalMemory::new(2);
        let a = mem.alloc().unwrap();
        let b = mem.alloc().unwrap();
        mem.write_word(PhysAddr::from_frame(a, 4092), 0x55);
        let data = mem.read_frame(a);
        mem.write_frame(b, &data);
        assert_eq!(mem.read_word(PhysAddr::from_frame(b, 4092)), 0x55);
    }

    #[test]
    fn high_water_mark_tracks_peak() {
        let mut mem = PhysicalMemory::new(3);
        let a = mem.alloc().unwrap();
        let _b = mem.alloc().unwrap();
        mem.free(a);
        let _c = mem.alloc().unwrap();
        assert_eq!(mem.high_water_mark(), 2);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut mem = PhysicalMemory::new(1);
        let f = mem.alloc().unwrap();
        mem.free(f);
        mem.free(f);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn read_of_unallocated_frame_panics() {
        let mem = PhysicalMemory::new(1);
        let _ = mem.read_word(PhysAddr::from_frame(FrameId(0), 0));
    }
}
