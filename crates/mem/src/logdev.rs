//! A write-behind log device model for durable PTM.
//!
//! [`LogDevice`] is an append-only byte device with segments, a bounded
//! in-flight queue and configurable latencies — the persistence substrate
//! HTPM/DUMBO-style durable transactional memory forces commit records and
//! undo/redo payloads through. The model is *functional* (every appended
//! byte is really stored and comes back in the crash image) and *hostile*:
//! a seed-driven [`LogFaultPlan`] injects the four failure modes a real
//! device exhibits:
//!
//! * **transient errors** — an append is rejected and must be retried by
//!   the caller (with exponential backoff); the device bounds consecutive
//!   rejections of the same record so a bounded retry loop always wins;
//! * **full-device stalls** — the device refuses all work until a deadline;
//!   callers degrade to throttled commits (poll-and-retry), never deadlock;
//! * **reordered flush completions** — in-flight appends complete out of
//!   submission order, so a crash can leave a *later* record durable while
//!   an earlier one is still a hole;
//! * **torn appends** — an append caught in flight by a crash persists only
//!   a prefix of its bytes.
//!
//! The last two only matter at a crash: [`LogDevice::crash_image`] resolves
//! every still-in-flight append through the fault plan and returns the
//! [`LogImage`] a recovery pass scans. Un-persisted byte ranges read as
//! zeroes (unwritten media), so checksummed record framing detects both
//! holes and torn tails.
//!
//! Timing is charged to the caller as returned cycle counts; with zero
//! latencies and [`LogFaultPlan::none`] the device is a timing no-op, which
//! is what makes the durable mode bit-identical to the volatile machine in
//! the zero-cost configuration (see the `durable_recovery` suite).

use ptm_types::rng::SplitMix64;
use ptm_types::Cycle;
use std::collections::VecDeque;

/// How many consecutive transient rejections the device may deal a single
/// record before it must accept it. Keeps every caller retry loop bounded
/// by construction: `MAX_CONSECUTIVE_TRANSIENTS + 1` attempts always win.
pub const MAX_CONSECUTIVE_TRANSIENTS: u32 = 2;

/// Log-device geometry and latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogDevConfig {
    /// Bytes per append-only segment; a segment seals when the append
    /// offset crosses its boundary (counted in [`LogDevStats`]).
    pub segment_bytes: usize,
    /// Maximum appends in flight before the device applies backpressure
    /// (an append must wait for the oldest completion).
    pub max_in_flight: usize,
    /// Cycles for an append to reach durable media after submission.
    pub append_latency: Cycle,
    /// Extra cycles a force (flush barrier) costs on top of waiting out
    /// the in-flight queue.
    pub flush_latency: Cycle,
}

impl Default for LogDevConfig {
    fn default() -> Self {
        LogDevConfig {
            segment_bytes: 1 << 16,
            max_in_flight: 8,
            append_latency: 0,
            flush_latency: 0,
        }
    }
}

impl LogDevConfig {
    /// A zero-latency device: appends and forces charge no cycles. Used by
    /// the bit-identity tests — durable mode in this configuration must not
    /// perturb machine timing at all.
    pub fn zero_cost() -> Self {
        LogDevConfig::default()
    }

    /// A device with realistic (simulated-cycle) latencies for benches.
    pub fn realistic() -> Self {
        LogDevConfig {
            segment_bytes: 1 << 16,
            max_in_flight: 8,
            append_latency: 150,
            flush_latency: 900,
        }
    }
}

/// Why an append was refused. Both variants are retryable; neither has any
/// device-side effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogAppendError {
    /// A transient device error; retry after a backoff. The device bounds
    /// consecutive occurrences per record by
    /// [`MAX_CONSECUTIVE_TRANSIENTS`].
    Transient,
    /// The device is stalled and refuses all work until `until`; the caller
    /// should throttle (re-poll at or after the deadline) rather than spin.
    Stalled {
        /// First cycle at which the device will accept work again.
        until: Cycle,
    },
}

/// The fate the fault plan assigns an append still in flight at a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CrashFate {
    /// The append completed early (out of order) — fully durable.
    Durable,
    /// Only a byte prefix reached the media.
    Torn,
    /// Nothing reached the media.
    Lost,
}

/// Seed-driven fault injection for a [`LogDevice`].
///
/// All decisions are pure functions of `(seed, append sequence number)`
/// through SplitMix64, so a plan is reproducible from its seed alone and
/// two devices given the same seed misbehave identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogFaultPlan {
    /// The seed the decision stream derives from (reports record it).
    pub seed: u64,
    /// Percent (0–100) of appends rejected with a transient error.
    pub transient_pct: u8,
    /// Percent (0–100) of appends that find the device entering a stall
    /// window.
    pub stall_pct: u8,
    /// Length of an injected stall window, cycles.
    pub stall_window: Cycle,
    /// Percent (0–100) of appends whose completion is jittered (the
    /// reordering source).
    pub reorder_pct: u8,
    /// Maximum completion jitter, cycles (uniform in `0..=max`).
    pub reorder_jitter: Cycle,
    /// Percent (0–100) of crash-caught in-flight appends that persist only
    /// a prefix (vs. completing early or being lost).
    pub torn_pct: u8,
}

impl LogFaultPlan {
    /// The fault-free plan: the device never misbehaves and a crash
    /// persists exactly the completed appends.
    pub fn none() -> Self {
        LogFaultPlan {
            seed: 0,
            transient_pct: 0,
            stall_pct: 0,
            stall_window: 0,
            reorder_pct: 0,
            reorder_jitter: 0,
            torn_pct: 0,
        }
    }

    /// Derives a hostile plan from a seed: moderate rates for all four
    /// fault kinds, with the emphasis (which kind dominates) rotating with
    /// the seed so a small seed set covers every kind.
    pub fn from_seed(seed: u64) -> Self {
        if seed == 0 {
            return LogFaultPlan::none();
        }
        let mut rng = SplitMix64::new(seed);
        let boost = rng.next_u64() % 4; // which fault kind gets emphasized
        let pct = |rng: &mut SplitMix64, base: u64, boosted: bool| -> u8 {
            let extra = rng.next_u64() % 10;
            (base + extra + if boosted { 25 } else { 0 }) as u8
        };
        LogFaultPlan {
            seed,
            transient_pct: pct(&mut rng, 8, boost == 0),
            stall_pct: pct(&mut rng, 4, boost == 1),
            stall_window: 2_000 + rng.next_u64() % 6_000,
            reorder_pct: pct(&mut rng, 20, boost == 2),
            reorder_jitter: 500 + rng.next_u64() % 2_000,
            torn_pct: pct(&mut rng, 30, boost == 3),
        }
    }

    /// Per-op decision stream: hash of `(seed, op, salt)`.
    fn roll(&self, op: u64, salt: u64) -> u64 {
        let mut x = self
            .seed
            .wrapping_add(op.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(salt.wrapping_mul(0xD1B5_4A32_D192_ED03));
        ptm_types::rng::splitmix64(&mut x)
    }

    fn transient(&self, op: u64) -> bool {
        self.transient_pct > 0 && self.roll(op, 1) % 100 < u64::from(self.transient_pct)
    }

    fn stall(&self, op: u64) -> Option<Cycle> {
        (self.stall_pct > 0 && self.roll(op, 2) % 100 < u64::from(self.stall_pct))
            .then(|| 1 + self.roll(op, 3) % self.stall_window.max(1))
    }

    fn jitter(&self, op: u64) -> Cycle {
        if self.reorder_pct > 0 && self.roll(op, 4) % 100 < u64::from(self.reorder_pct) {
            self.roll(op, 5) % (self.reorder_jitter + 1)
        } else {
            0
        }
    }

    fn crash_fate(&self, op: u64) -> CrashFate {
        let r = self.roll(op, 6) % 100;
        if r < u64::from(self.torn_pct) {
            CrashFate::Torn
        } else if r < u64::from(self.torn_pct) + 30 {
            CrashFate::Durable
        } else {
            CrashFate::Lost
        }
    }

    /// How many bytes of an `len`-byte torn append persist (at least 1,
    /// fewer than `len`).
    fn torn_prefix(&self, op: u64, len: usize) -> usize {
        if len <= 1 {
            return 0;
        }
        1 + (self.roll(op, 7) as usize) % (len - 1)
    }
}

/// Device observability: every counter the durable bench reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogDevStats {
    /// Appends accepted (one per record that reached the queue).
    pub appends: u64,
    /// Bytes accepted.
    pub bytes_appended: u64,
    /// Forces (flush barriers) executed.
    pub forces: u64,
    /// Transient errors dealt to callers.
    pub transient_errors: u64,
    /// Stall windows entered.
    pub stall_events: u64,
    /// Appends refused because the device was inside a stall window.
    pub stalled_rejections: u64,
    /// Appends that had to wait out the oldest in-flight completion
    /// because the queue was full (backpressure).
    pub backpressure_waits: u64,
    /// Cycles callers spent waiting on backpressure, total.
    pub backpressure_cycles: u64,
    /// Completions that finished out of submission order.
    pub reordered_completions: u64,
    /// Segments sealed (append offset crossed a segment boundary).
    pub segments_sealed: u64,
    /// Peak in-flight queue depth observed.
    pub in_flight_peak: u64,
}

/// One append still in flight.
#[derive(Debug, Clone)]
struct Pending {
    /// Submission sequence number (fault-plan key).
    seq: u64,
    /// Byte offset of this record in the device image.
    offset: usize,
    len: usize,
    complete_at: Cycle,
}

/// What a crash leaves on the media: the device image recovery scans, plus
/// enough accounting to report what was lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogImage {
    /// The durable bytes, holes and torn tails zero-filled.
    pub bytes: Vec<u8>,
    /// Records ever accepted by the device (durable or not).
    pub records_appended: u64,
    /// In-flight appends the crash caught and the plan tore (prefix only).
    pub torn_appends: u64,
    /// In-flight appends the crash caught and the plan lost entirely.
    pub lost_appends: u64,
    /// In-flight appends the crash caught that completed early
    /// (out-of-order durability).
    pub early_appends: u64,
    /// Device counters at the crash.
    pub stats: LogDevStats,
}

impl LogImage {
    /// An image of an absent device (volatile runs).
    pub fn empty() -> Self {
        LogImage {
            bytes: Vec::new(),
            records_appended: 0,
            torn_appends: 0,
            lost_appends: 0,
            early_appends: 0,
            stats: LogDevStats::default(),
        }
    }

    /// Truncates the image after a recovery scan found its valid prefix,
    /// so a second recovery sees a clean log (idempotence).
    pub fn truncate(&mut self, len: usize) {
        self.bytes.truncate(len);
    }
}

/// The write-behind log device. See the module docs.
#[derive(Debug, Clone)]
pub struct LogDevice {
    cfg: LogDevConfig,
    plan: LogFaultPlan,
    /// Every accepted byte at its assigned offset. In-flight ranges are
    /// present here (the data *was* submitted); [`LogDevice::crash_image`]
    /// zeroes the ranges the crash proves never reached media.
    buf: Vec<u8>,
    pending: VecDeque<Pending>,
    /// Submission sequence counter (fault-plan key); also counts records.
    seq: u64,
    /// Completion time of the most recently *drained* append — used to
    /// detect out-of-order completions.
    last_drained_seq: Option<u64>,
    /// Device-wide stall deadline (0 = not stalled).
    stall_until: Cycle,
    /// The record that triggered the most recent stall window. A record
    /// opens at most one window, so a caller that waits out the deadline
    /// and retries is guaranteed to get past the stall — throttled commits
    /// are bounded by construction.
    last_stall_seq: Option<u64>,
    /// Consecutive transient rejections dealt to the record currently being
    /// retried (bounded by [`MAX_CONSECUTIVE_TRANSIENTS`]).
    consecutive_transients: u32,
    stats: LogDevStats,
}

impl LogDevice {
    /// Creates a device with the given geometry and fault plan.
    pub fn new(cfg: LogDevConfig, plan: LogFaultPlan) -> Self {
        assert!(cfg.max_in_flight > 0, "in-flight queue needs capacity");
        LogDevice {
            cfg,
            plan,
            buf: Vec::new(),
            pending: VecDeque::new(),
            seq: 0,
            last_drained_seq: None,
            stall_until: 0,
            last_stall_seq: None,
            consecutive_transients: 0,
            stats: LogDevStats::default(),
        }
    }

    /// Reopens a device over a recovered durable prefix: the journal seam
    /// recovery uses to *continue* appending where the crash left off. The
    /// buffer starts as `durable` (a scan-validated prefix of a
    /// [`LogImage`]), the in-flight queue is empty (everything recovered is
    /// durable by definition), and the submission sequence resumes at
    /// `records` so the fault-plan decision stream does not replay the
    /// pre-crash fates on post-recovery appends. Stats start fresh: they
    /// count the device's post-recovery life.
    pub fn reopen(cfg: LogDevConfig, plan: LogFaultPlan, durable: Vec<u8>, records: u64) -> Self {
        let mut dev = LogDevice::new(cfg, plan);
        dev.buf = durable;
        dev.seq = records;
        dev.last_drained_seq = records.checked_sub(1);
        dev
    }

    /// Device counters.
    pub fn stats(&self) -> &LogDevStats {
        &self.stats
    }

    /// Bytes accepted so far (durable or in flight).
    pub fn appended_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Completes every in-flight append whose completion time has passed.
    pub fn poll(&mut self, now: Cycle) {
        // Reordered completions: drain by completion time, not queue order.
        loop {
            let due: Option<usize> = self
                .pending
                .iter()
                .enumerate()
                .filter(|(_, p)| p.complete_at <= now)
                .min_by_key(|(_, p)| (p.complete_at, p.seq))
                .map(|(i, _)| i);
            let Some(i) = due else { break };
            let p = self.pending.remove(i).expect("index from enumerate");
            if let Some(last) = self.last_drained_seq {
                if p.seq < last {
                    self.stats.reordered_completions += 1;
                }
            }
            self.last_drained_seq = Some(self.last_drained_seq.unwrap_or(0).max(p.seq));
        }
    }

    /// Whether the device refuses work at `now` (inside a stall window).
    /// Returns the deadline to re-poll at.
    pub fn stalled_until(&self, now: Cycle) -> Option<Cycle> {
        (now < self.stall_until).then_some(self.stall_until)
    }

    /// Submits `record` for write-behind persistence. On success returns
    /// the cycles the *submission* cost the caller (only backpressure waits
    /// — the write itself completes asynchronously `append_latency` later).
    ///
    /// # Errors
    ///
    /// [`LogAppendError::Transient`] (retry after backoff) or
    /// [`LogAppendError::Stalled`] (re-poll at the deadline). Neither has
    /// any device-side effect; consecutive transients for one record are
    /// bounded by [`MAX_CONSECUTIVE_TRANSIENTS`].
    pub fn append(&mut self, record: &[u8], now: Cycle) -> Result<Cycle, LogAppendError> {
        self.poll(now);
        if let Some(until) = self.stalled_until(now) {
            self.stats.stalled_rejections += 1;
            return Err(LogAppendError::Stalled { until });
        }
        let seq = self.seq;
        if self.last_stall_seq != Some(seq) {
            if let Some(window) = self.plan.stall(seq) {
                self.stall_until = now + window;
                self.last_stall_seq = Some(seq);
                self.stats.stall_events += 1;
                self.stats.stalled_rejections += 1;
                return Err(LogAppendError::Stalled {
                    until: self.stall_until,
                });
            }
        }
        if self.consecutive_transients < MAX_CONSECUTIVE_TRANSIENTS && self.plan.transient(seq) {
            self.consecutive_transients += 1;
            self.stats.transient_errors += 1;
            return Err(LogAppendError::Transient);
        }
        self.consecutive_transients = 0;

        // Bounded in-flight queue: wait out the oldest completion.
        let mut wait = 0;
        if self.pending.len() >= self.cfg.max_in_flight {
            let earliest = self
                .pending
                .iter()
                .map(|p| p.complete_at)
                .min()
                .expect("queue is full, so non-empty");
            wait = earliest.saturating_sub(now);
            self.stats.backpressure_waits += 1;
            self.stats.backpressure_cycles += wait;
            self.poll(now + wait);
        }

        let offset = self.buf.len();
        self.buf.extend_from_slice(record);
        let sealed_before = (offset / self.cfg.segment_bytes) as u64;
        let sealed_after = (self.buf.len() / self.cfg.segment_bytes) as u64;
        self.stats.segments_sealed += sealed_after - sealed_before;

        self.pending.push_back(Pending {
            seq,
            offset,
            len: record.len(),
            complete_at: now + wait + self.cfg.append_latency + self.plan.jitter(seq),
        });
        self.seq += 1;
        self.stats.appends += 1;
        self.stats.bytes_appended += record.len() as u64;
        self.stats.in_flight_peak = self.stats.in_flight_peak.max(self.pending.len() as u64);
        Ok(wait)
    }

    /// Flush barrier: waits out every in-flight append (and any stall
    /// window), making everything accepted so far durable. Returns the
    /// cycles charged to the caller.
    pub fn force(&mut self, now: Cycle) -> Cycle {
        self.stats.forces += 1;
        let mut done_at = now.max(self.stall_until);
        for p in &self.pending {
            done_at = done_at.max(p.complete_at);
        }
        self.poll(done_at);
        debug_assert!(self.pending.is_empty(), "force drains the queue");
        done_at - now + self.cfg.flush_latency
    }

    /// Resolves the crash-boundary state of the device: completed appends
    /// are durable; each append still in flight is resolved through the
    /// fault plan (completed early / torn prefix / lost), with un-persisted
    /// ranges zero-filled. `now` is the machine cycle of the crash.
    pub fn crash_image(&self, now: Cycle) -> LogImage {
        let mut bytes = self.buf.clone();
        let mut img = LogImage {
            bytes: Vec::new(),
            records_appended: self.seq,
            torn_appends: 0,
            lost_appends: 0,
            early_appends: 0,
            stats: self.stats,
        };
        for p in &self.pending {
            if p.complete_at <= now {
                continue; // Completed, just not yet drained: durable.
            }
            match self.plan.crash_fate(p.seq) {
                CrashFate::Durable => img.early_appends += 1,
                CrashFate::Torn => {
                    let keep = self.plan.torn_prefix(p.seq, p.len);
                    bytes[p.offset + keep..p.offset + p.len].fill(0);
                    img.torn_appends += 1;
                }
                CrashFate::Lost => {
                    bytes[p.offset..p.offset + p.len].fill(0);
                    img.lost_appends += 1;
                }
            }
        }
        img.bytes = bytes;
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_append_and_force_are_zero_cost() {
        let mut dev = LogDevice::new(LogDevConfig::zero_cost(), LogFaultPlan::none());
        for i in 0..100u8 {
            assert_eq!(dev.append(&[i; 32], 1_000), Ok(0));
        }
        assert_eq!(dev.force(1_000), 0);
        assert_eq!(dev.stats().appends, 100);
        assert_eq!(dev.stats().transient_errors, 0);
        assert_eq!(dev.stats().stall_events, 0);
        let img = dev.crash_image(1_000);
        assert_eq!(img.bytes.len(), 3_200);
        assert_eq!(img.torn_appends + img.lost_appends, 0);
    }

    #[test]
    fn backpressure_waits_out_the_oldest_completion() {
        let cfg = LogDevConfig {
            max_in_flight: 2,
            append_latency: 100,
            ..LogDevConfig::default()
        };
        let mut dev = LogDevice::new(cfg, LogFaultPlan::none());
        assert_eq!(dev.append(&[1; 8], 0), Ok(0));
        assert_eq!(dev.append(&[2; 8], 0), Ok(0));
        // Queue full; the third append waits for the first completion.
        assert_eq!(dev.append(&[3; 8], 0), Ok(100));
        assert_eq!(dev.stats().backpressure_waits, 1);
        assert_eq!(dev.stats().backpressure_cycles, 100);
    }

    #[test]
    fn transient_streaks_are_bounded_per_record() {
        let plan = LogFaultPlan {
            transient_pct: 100, // every roll says "reject"
            ..LogFaultPlan::from_seed(7)
        };
        let plan = LogFaultPlan {
            stall_pct: 0,
            ..plan
        };
        let mut dev = LogDevice::new(LogDevConfig::zero_cost(), plan);
        let mut rejections = 0;
        loop {
            match dev.append(&[9; 16], 0) {
                Ok(_) => break,
                Err(LogAppendError::Transient) => rejections += 1,
                Err(LogAppendError::Stalled { .. }) => unreachable!("stall_pct is 0"),
            }
            assert!(rejections <= MAX_CONSECUTIVE_TRANSIENTS);
        }
        assert_eq!(rejections, MAX_CONSECUTIVE_TRANSIENTS);
    }

    #[test]
    fn stall_windows_are_finite_and_refuse_work() {
        let plan = LogFaultPlan {
            stall_pct: 100,
            stall_window: 500,
            transient_pct: 0,
            ..LogFaultPlan::from_seed(11)
        };
        let mut dev = LogDevice::new(LogDevConfig::zero_cost(), plan);
        let Err(LogAppendError::Stalled { until }) = dev.append(&[1; 8], 1_000) else {
            panic!("expected a stall");
        };
        assert!(until > 1_000 && until <= 1_500, "finite window: {until}");
        // Mid-window work is refused with the same deadline.
        assert!(matches!(
            dev.append(&[1; 8], until - 1),
            Err(LogAppendError::Stalled { until: u }) if u == until
        ));
        // At the deadline the device recovers (the next roll may stall
        // again, but each window is finite — step until accepted).
        let mut now = until;
        for _ in 0..100 {
            match dev.append(&[1; 8], now) {
                Ok(_) => return,
                Err(LogAppendError::Stalled { until }) => now = until,
                Err(LogAppendError::Transient) => {}
            }
        }
        panic!("device never recovered from stalls");
    }

    #[test]
    fn crash_resolves_in_flight_appends_through_the_plan() {
        let cfg = LogDevConfig {
            append_latency: 10_000, // nothing completes before the crash
            max_in_flight: 64,
            ..LogDevConfig::default()
        };
        let plan = LogFaultPlan {
            transient_pct: 0,
            stall_pct: 0,
            torn_pct: 50,
            ..LogFaultPlan::from_seed(13)
        };
        let mut dev = LogDevice::new(cfg, plan);
        for i in 0..40u8 {
            dev.append(&[i + 1; 64], 0).expect("no refusals configured");
        }
        let img = dev.crash_image(0);
        assert_eq!(img.records_appended, 40);
        assert!(img.torn_appends > 0, "plan must tear something");
        assert!(img.lost_appends > 0, "plan must lose something");
        assert!(img.early_appends > 0, "plan must complete something early");
        // A torn append keeps a non-empty strict prefix: its range holds
        // some non-zero then zero bytes.
        assert_eq!(img.bytes.len(), 40 * 64);
        // Determinism: the same device state resolves identically.
        assert_eq!(dev.crash_image(0), img);
    }

    #[test]
    fn force_makes_everything_durable_despite_faults() {
        let cfg = LogDevConfig {
            append_latency: 5_000,
            flush_latency: 100,
            max_in_flight: 4,
            ..LogDevConfig::default()
        };
        let plan = LogFaultPlan {
            transient_pct: 0,
            stall_pct: 0,
            ..LogFaultPlan::from_seed(17)
        };
        let mut dev = LogDevice::new(cfg, plan);
        for i in 0..10u8 {
            dev.append(&[i + 1; 16], 0).expect("no refusals configured");
        }
        let cost = dev.force(0);
        assert!(cost >= 5_000 + 100, "force waits out the queue: {cost}");
        let img = dev.crash_image(0);
        assert_eq!(img.torn_appends + img.lost_appends + img.early_appends, 0);
        assert!(img.bytes.iter().all(|b| *b != 0), "all forced bytes kept");
    }

    #[test]
    fn reopen_resumes_offsets_and_fault_stream_past_the_recovered_prefix() {
        let plan = LogFaultPlan::none();
        let mut dev = LogDevice::new(LogDevConfig::zero_cost(), plan);
        for i in 0..5u8 {
            dev.append(&[i + 1; 16], 0).unwrap();
        }
        dev.force(0);
        let img = dev.crash_image(0);

        let mut reopened = LogDevice::reopen(LogDevConfig::zero_cost(), plan, img.bytes.clone(), 5);
        assert_eq!(reopened.appended_bytes(), 5 * 16);
        reopened.append(&[9; 16], 0).unwrap();
        let img2 = reopened.crash_image(0);
        // The recovered prefix is untouched, the new record follows it.
        assert_eq!(&img2.bytes[..5 * 16], &img.bytes[..]);
        assert_eq!(&img2.bytes[5 * 16..], &[9; 16]);
        // Post-recovery stats count the reopened life only.
        assert_eq!(reopened.stats().appends, 1);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let a = LogFaultPlan::from_seed(101);
        let b = LogFaultPlan::from_seed(101);
        let c = LogFaultPlan::from_seed(102);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(LogFaultPlan::from_seed(0), LogFaultPlan::none());
    }

    #[test]
    fn segments_seal_as_offsets_cross_boundaries() {
        let cfg = LogDevConfig {
            segment_bytes: 128,
            ..LogDevConfig::zero_cost()
        };
        let mut dev = LogDevice::new(cfg, LogFaultPlan::none());
        for _ in 0..10 {
            dev.append(&[7; 48], 0).unwrap();
        }
        // 480 bytes over 128-byte segments: offset crossed 128/256/384.
        assert_eq!(dev.stats().segments_sealed, 3);
    }
}
