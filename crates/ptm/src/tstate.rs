//! The T-State table: per-transaction status and the vertical TAV list head.
//!
//! The paper's T-State structure (Figure 1) is indexed by transaction number
//! and holds each transaction's state — `Running`, `Committing`, `Aborting` —
//! plus the head of its vertical TAV list, the saved register checkpoint,
//! and (here) the flattened-nesting depth and ordered-commit sequence.
//! Commit and abort first flip the status *atomically* (the "logical"
//! commit/abort); the TAV cleanup then proceeds lazily.

use crate::tav::TavRef;
use ptm_types::{FastMap, TxId};
use std::fmt;

/// Lifecycle states of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxStatus {
    /// Executing (or context-switched out mid-execution).
    Running,
    /// Logically committed; TAV cleanup may still be in flight.
    Committing,
    /// Logically aborted; TAV cleanup may still be in flight.
    Aborting,
    /// Fully committed and cleaned up.
    Committed,
    /// Fully aborted and cleaned up; the transaction will re-execute with
    /// the same identifier.
    Aborted,
}

impl TxStatus {
    /// Whether the transaction can still win or lose conflicts.
    pub fn is_live(self) -> bool {
        matches!(self, TxStatus::Running)
    }
}

impl fmt::Display for TxStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TxStatus::Running => "running",
            TxStatus::Committing => "committing",
            TxStatus::Aborting => "aborting",
            TxStatus::Committed => "committed",
            TxStatus::Aborted => "aborted",
        };
        f.write_str(s)
    }
}

/// One T-State entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TStateEntry {
    /// Current status.
    pub status: TxStatus,
    /// Head of the vertical TAV list (pages this transaction overflowed).
    pub tav_head: Option<TavRef>,
    /// Flattened-nesting depth (§2.3.1): inner `Begin`s increment, inner
    /// `End`s decrement; only depth 0→1 and 1→0 are architectural events.
    pub depth: u32,
    /// Commit-order sequence number for ordered transactions.
    pub ordered_seq: Option<u64>,
    /// How many times this transaction has aborted and re-executed.
    pub abort_count: u32,
}

/// The T-State table.
///
/// # Examples
///
/// ```
/// use ptm_core::tstate::{TStateTable, TxStatus};
/// use ptm_types::TxId;
///
/// let mut t = TStateTable::new();
/// t.begin(TxId(1), None);
/// assert_eq!(t.status(TxId(1)), Some(TxStatus::Running));
/// t.set_status(TxId(1), TxStatus::Committing);
/// assert!(!t.status(TxId(1)).unwrap().is_live());
/// ```
#[derive(Debug, Default, Clone)]
pub struct TStateTable {
    entries: FastMap<TxId, TStateEntry>,
}

impl TStateTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a transaction at its (outermost) begin.
    ///
    /// An aborted transaction re-executes under its original identifier; in
    /// that case the existing entry is reset to `Running` and its abort
    /// count preserved.
    pub fn begin(&mut self, tx: TxId, ordered_seq: Option<u64>) {
        match self.entries.get_mut(&tx) {
            Some(e) => {
                assert_eq!(
                    e.status,
                    TxStatus::Aborted,
                    "only an aborted transaction may re-begin"
                );
                e.status = TxStatus::Running;
                e.depth = 1;
                debug_assert!(e.tav_head.is_none(), "aborted tx must have no TAVs");
            }
            None => {
                self.entries.insert(
                    tx,
                    TStateEntry {
                        status: TxStatus::Running,
                        tav_head: None,
                        depth: 1,
                        ordered_seq,
                        abort_count: 0,
                    },
                );
            }
        }
    }

    /// Current status of `tx`, if known.
    pub fn status(&self, tx: TxId) -> Option<TxStatus> {
        self.entries.get(&tx).map(|e| e.status)
    }

    /// Sets the status (the atomic "logical" commit/abort flip).
    ///
    /// # Panics
    ///
    /// Panics if the transaction is unknown.
    pub fn set_status(&mut self, tx: TxId, status: TxStatus) {
        let e = self.entry_mut(tx);
        if status == TxStatus::Aborted {
            e.abort_count += 1;
        }
        e.status = status;
    }

    /// Borrows the entry for `tx`.
    ///
    /// # Panics
    ///
    /// Panics if the transaction is unknown.
    pub fn entry(&self, tx: TxId) -> &TStateEntry {
        self.entries
            .get(&tx)
            .unwrap_or_else(|| panic!("unknown transaction {tx}"))
    }

    /// Mutably borrows the entry for `tx`.
    ///
    /// # Panics
    ///
    /// Panics if the transaction is unknown.
    pub fn entry_mut(&mut self, tx: TxId) -> &mut TStateEntry {
        self.entries
            .get_mut(&tx)
            .unwrap_or_else(|| panic!("unknown transaction {tx}"))
    }

    /// Returns `true` if `tx` is live (running).
    pub fn is_live(&self, tx: TxId) -> bool {
        self.status(tx).map(|s| s.is_live()).unwrap_or(false)
    }

    /// Enters a nested transaction; returns the new depth.
    pub fn enter_nested(&mut self, tx: TxId) -> u32 {
        let e = self.entry_mut(tx);
        e.depth += 1;
        e.depth
    }

    /// Leaves a nesting level; returns `true` when the *outermost*
    /// transaction ended (depth reached zero) and the commit should proceed.
    pub fn leave_nested(&mut self, tx: TxId) -> bool {
        let e = self.entry_mut(tx);
        assert!(e.depth > 0, "unbalanced transaction end");
        e.depth -= 1;
        e.depth == 0
    }

    /// Live transactions, in unspecified order.
    pub fn live_transactions(&self) -> Vec<TxId> {
        self.entries
            .iter()
            .filter(|(_, e)| e.status.is_live())
            .map(|(tx, _)| *tx)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_creates_running_entry() {
        let mut t = TStateTable::new();
        t.begin(TxId(1), Some(4));
        let e = t.entry(TxId(1));
        assert_eq!(e.status, TxStatus::Running);
        assert_eq!(e.depth, 1);
        assert_eq!(e.ordered_seq, Some(4));
        assert!(t.is_live(TxId(1)));
    }

    #[test]
    fn nested_flattening_counts_depth() {
        let mut t = TStateTable::new();
        t.begin(TxId(1), None);
        assert_eq!(t.enter_nested(TxId(1)), 2);
        assert!(!t.leave_nested(TxId(1)), "inner end is not a commit");
        assert!(t.leave_nested(TxId(1)), "outermost end commits");
    }

    #[test]
    fn abort_then_rebegin_keeps_identifier_and_counts() {
        let mut t = TStateTable::new();
        t.begin(TxId(5), None);
        t.set_status(TxId(5), TxStatus::Aborting);
        t.set_status(TxId(5), TxStatus::Aborted);
        t.begin(TxId(5), None);
        let e = t.entry(TxId(5));
        assert_eq!(e.status, TxStatus::Running);
        assert_eq!(e.abort_count, 1);
    }

    #[test]
    #[should_panic(expected = "only an aborted transaction may re-begin")]
    fn rebegin_of_running_tx_panics() {
        let mut t = TStateTable::new();
        t.begin(TxId(1), None);
        t.begin(TxId(1), None);
    }

    #[test]
    fn committing_is_not_live() {
        let mut t = TStateTable::new();
        t.begin(TxId(1), None);
        t.set_status(TxId(1), TxStatus::Committing);
        assert!(!t.is_live(TxId(1)));
        assert!(t.live_transactions().is_empty());
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_end_panics() {
        let mut t = TStateTable::new();
        t.begin(TxId(1), None);
        t.leave_nested(TxId(1));
        t.leave_nested(TxId(1));
    }

    #[test]
    fn live_transactions_lists_only_running() {
        let mut t = TStateTable::new();
        t.begin(TxId(1), None);
        t.begin(TxId(2), None);
        t.set_status(TxId(2), TxStatus::Committing);
        assert_eq!(t.live_transactions(), vec![TxId(1)]);
    }
}
