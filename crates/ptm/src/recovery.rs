//! Crash recovery for PTM metadata.
//!
//! The crash model (DESIGN.md decision 19) says that physical memory, the
//! swap device and the PTM metadata tables (SPT, SIT, TAV arena, T-State)
//! survive a crash-stop, while everything cache-like — speculative buffers,
//! the VTS SPT/TAV caches, lazy-cleanup timers — is lost. Recovery therefore
//! has one job: discard every transaction that was live at the crash point
//! and put the surviving durable state back into the canonical "no
//! transactions anywhere" shape, so that a plain read of each home page (or
//! swapped home image) yields exactly the committed data.
//!
//! Per policy that means:
//!
//! * **Copy-PTM** — live transactions' overflowed writes landed in the home
//!   page with the committed backup in the shadow, so each written block is
//!   restored shadow → home (word-masked at word granularity, mirroring
//!   [`PtmSystem::abort`]).
//! * **Select-PTM** — speculative overflow data went to the non-committed
//!   side of each selection bit, so discarding a live transaction moves no
//!   data; recovery folds the committed side of every set selection bit back
//!   into the home page so the shadow can be freed.
//!
//! The only torn-write case in the model is the youngest in-flight TAV
//! publish: a node already linked into its page's horizontal list whose
//! T-State vertical-list head update never landed. Such orphans are found by
//! reachability (page-list nodes not on any transaction's chain) and
//! discarded like any other live node — their access vectors are intact, so
//! Copy-PTM restore still works. [`tear_youngest_tav_tail`] injects exactly
//! this state for testing.
//!
//! Recovery is idempotent: a second pass over a recovered system finds no
//! live transactions, no TAV nodes and no shadows, and reports all-zero
//! [`RecoveryStats`].

use crate::config::PtmPolicy;
use crate::system::{copy_image_block, copy_image_words, restore_words, PtmSystem};
use crate::tav::TavRef;
use crate::tstate::TxStatus;
use ptm_mem::{PhysicalMemory, SwapStore};
use ptm_types::{BlockVec, FastSet, FrameId, PhysBlock, SwapSlot, TxId};

/// What a recovery pass did, for reporting and idempotence checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Live transactions discarded (set to `Aborted`).
    pub transactions_discarded: u64,
    /// Blocks copied to put committed data back in home pages: Copy-PTM
    /// shadow → home restores plus Select-PTM selection folds, resident and
    /// swapped alike.
    pub blocks_restored: u64,
    /// TAV nodes that were on a page list but on no transaction's chain —
    /// torn publishes — and were repaired (discarded with their data
    /// restored).
    pub torn_nodes_repaired: u64,
    /// Shadow pages released (resident frames freed plus swapped shadow
    /// slots discarded).
    pub shadow_pages_freed: u64,
    /// TAV nodes freed in total (torn ones included).
    pub tav_nodes_freed: u64,
    /// Log-device records discarded by the bounded tail scan (the frame at
    /// the cut; everything behind it is in `log_bytes_truncated`).
    pub log_records_discarded: u64,
    /// Discarded frames whose header parsed but whose checksum failed
    /// (torn appends caught red-handed, vs. structural holes).
    pub log_checksum_mismatches: u64,
    /// Bytes cut off the device image past its last valid record. The cut
    /// *repairs* the image — a second scan finds a clean log.
    pub log_bytes_truncated: u64,
    /// Live-transaction undo payloads whose committed pre-image did not
    /// match recovered memory (must be zero — replay reconciliation).
    pub log_replay_mismatches: u64,
    /// Durable commit records naming transactions the machine never
    /// committed (must be zero — a phantom commit is corruption).
    pub log_phantom_commits: u64,
    /// Valid commit records found in the log (observation only).
    pub log_commit_records: u64,
    /// Valid abort records found in the log (observation only).
    pub log_abort_records: u64,
    /// Valid undo records found in the log (observation only).
    pub log_undo_records: u64,
    /// Valid redo records found in the log (observation only).
    pub log_redo_records: u64,
    /// Valid word-undo records found in the log — eager-versioning WAL
    /// pre-images (observation only).
    pub log_word_undo_records: u64,
    /// Writing commits the machine performed whose commit record did not
    /// survive in the durable log — zero under eager forcing; lazy/group
    /// trade exactly this for commit latency (observation only).
    pub log_commits_missing: u64,
    /// Live-transaction undo payloads verified word-identical against
    /// recovered memory (observation only).
    pub log_replay_verified: u64,
    /// Undo records skipped because an abort voided them: the pre-image
    /// belongs to an earlier incarnation of a retried transaction, so it
    /// may legitimately be stale (observation only).
    pub log_undo_stale: u64,
    /// Valid records of a kind this recovery pass does not own (service-
    /// journal frames in a machine-level log) — counted, never acted on
    /// (observation only).
    pub log_foreign_records: u64,
}

impl RecoveryStats {
    /// Whether the pass found nothing to *do*. Compares the mutation and
    /// integrity-violation fields only: pure observations (records merely
    /// counted in an already-valid log, commits a lazy policy legitimately
    /// never forced) repeat on every pass over the same image and must not
    /// make an idempotent recovery look like it did work.
    pub fn is_noop(&self) -> bool {
        let RecoveryStats {
            transactions_discarded,
            blocks_restored,
            torn_nodes_repaired,
            shadow_pages_freed,
            tav_nodes_freed,
            log_records_discarded,
            log_checksum_mismatches,
            log_bytes_truncated,
            log_replay_mismatches,
            log_phantom_commits,
            // Observation-only fields, deliberately ignored:
            log_commit_records: _,
            log_abort_records: _,
            log_undo_records: _,
            log_redo_records: _,
            log_word_undo_records: _,
            log_commits_missing: _,
            log_replay_verified: _,
            log_undo_stale: _,
            log_foreign_records: _,
        } = *self;
        transactions_discarded == 0
            && blocks_restored == 0
            && torn_nodes_repaired == 0
            && shadow_pages_freed == 0
            && tav_nodes_freed == 0
            && log_records_discarded == 0
            && log_checksum_mismatches == 0
            && log_bytes_truncated == 0
            && log_replay_mismatches == 0
            && log_phantom_commits == 0
    }
}

/// Scans a crashed log-device image for valid records, discards the torn
/// tail (bounded single pass — see [`crate::durability::scan_records`]) and
/// truncates the image to its valid prefix so a second recovery finds a
/// clean log. Counts everything into `stats`; returns the valid records
/// for the caller's reconciliation pass.
pub fn recover_log(
    image: &mut ptm_mem::LogImage,
    stats: &mut RecoveryStats,
) -> Vec<crate::durability::LogRecord> {
    use crate::durability::LogRecordKind;
    let scan = crate::durability::scan_records(&image.bytes);
    stats.log_records_discarded += scan.records_discarded;
    stats.log_checksum_mismatches += scan.checksum_mismatches;
    stats.log_bytes_truncated += scan.bytes_discarded;
    for r in &scan.records {
        match r.kind {
            LogRecordKind::Commit => stats.log_commit_records += 1,
            LogRecordKind::Abort => stats.log_abort_records += 1,
            LogRecordKind::Undo => stats.log_undo_records += 1,
            LogRecordKind::Redo => stats.log_redo_records += 1,
            LogRecordKind::WordUndo => stats.log_word_undo_records += 1,
            // Service-journal records never appear in a machine-level log;
            // count them as foreign rather than silently dropping them.
            LogRecordKind::SvcAccept | LogRecordKind::SvcSeal | LogRecordKind::SvcCommit => {
                stats.log_foreign_records += 1
            }
        }
    }
    image.truncate(scan.valid_len);
    scan.records
}

/// Simulates the model's one torn-write case: the youngest live
/// transaction's most recent TAV publish got its node linked into the page
/// list, but the crash hit before the T-State chain head was updated.
///
/// Unlinks the head node of the youngest live transaction's chain from that
/// chain only — the node stays on its page list with its access vectors
/// intact. Returns the affected transaction, or `None` if no live
/// transaction has an overflowed node to tear.
pub fn tear_youngest_tav_tail(sys: &mut PtmSystem) -> Option<TxId> {
    let mut live = sys.tstate.live_transactions();
    live.sort();
    for tx in live.into_iter().rev() {
        if let Some(head) = sys.tstate.entry(tx).tav_head {
            let next = sys.tavs.next_in_tx(head);
            sys.tstate.entry_mut(tx).tav_head = next;
            return Some(tx);
        }
    }
    None
}

/// Walks the durable image and discards every live transaction, restoring
/// committed data into the home pages and releasing all shadows and TAV
/// nodes. See the module docs for the per-policy rules.
pub fn recover(
    sys: &mut PtmSystem,
    mem: &mut PhysicalMemory,
    swap: &mut SwapStore,
) -> RecoveryStats {
    let mut out = RecoveryStats::default();

    // Nodes reachable from some transaction's vertical chain. Page-list
    // nodes outside this set are torn publishes.
    let mut reachable: FastSet<TavRef> = FastSet::default();
    for tx in sys.tstate.live_transactions() {
        let mut cur = sys.tstate.entry(tx).tav_head;
        while let Some(r) = cur {
            reachable.insert(r);
            cur = sys.tavs.next_in_tx(r);
        }
    }

    let frames: Vec<FrameId> = sys.spt.iter().map(|e| e.home).collect();
    for frame in frames {
        recover_resident_page(sys, mem, frame, &reachable, &mut out);
    }

    let slots: Vec<SwapSlot> = sys.sit.iter().map(|e| e.home_slot).collect();
    for slot in slots {
        recover_swapped_page(sys, swap, slot, &reachable, &mut out);
    }

    let mut live = sys.tstate.live_transactions();
    live.sort();
    for tx in live {
        sys.tstate.entry_mut(tx).tav_head = None;
        sys.tstate.set_status(tx, TxStatus::Aborted);
        sys.stats.aborts += 1;
        out.transactions_discarded += 1;
    }

    // Volatile VTS state dies with the machine.
    sys.spt_cache.remove_matching(|_| true);
    sys.tav_cache.remove_matching(|_| true);
    sys.cleanup_pages.clear();

    debug_assert_eq!(sys.tavs.live(), 0, "recovery must drain the TAV arena");
    debug_assert_eq!(sys.live_shadows, 0, "recovery must free every shadow");
    debug_assert!(sys.tstate.live_transactions().is_empty());
    out
}

fn recover_resident_page(
    sys: &mut PtmSystem,
    mem: &mut PhysicalMemory,
    frame: FrameId,
    reachable: &FastSet<TavRef>,
    out: &mut RecoveryStats,
) {
    let (head, shadow) = {
        let e = sys.spt.entry(frame).expect("frame listed by the SPT");
        (e.tav_head, e.shadow)
    };

    let nodes: Vec<TavRef> = sys.tavs.page_iter(head).collect();
    for r in nodes {
        let write = sys.tavs.write_vec(r);
        if sys.cfg.policy == PtmPolicy::Copy && !write.is_empty() {
            let shadow = shadow.expect("dirty overflow implies a shadow page");
            for idx in write.iter() {
                let home_block = PhysBlock::new(frame, idx);
                let shadow_block = home_block.on_frame(shadow);
                if sys.cfg.granularity.word_in_cache() {
                    let mask = sys.tavs.write_words(r).block_words(idx);
                    restore_words(mem, shadow_block, home_block, mask);
                } else {
                    mem.copy_block(shadow_block, home_block);
                }
                sys.stats.restore_copies += 1;
                out.blocks_restored += 1;
            }
        }
        if !reachable.contains(&r) {
            out.torn_nodes_repaired += 1;
        }
        sys.tavs.free(r);
        out.tav_nodes_freed += 1;
    }

    sys.spt
        .set_summaries(frame, BlockVec::EMPTY, BlockVec::EMPTY);
    let entry = sys.spt.entry_mut(frame).expect("frame listed by the SPT");
    entry.tav_head = None;
    entry.contested = BlockVec::EMPTY;
    let sel = std::mem::replace(&mut entry.sel, BlockVec::EMPTY);
    let shadow = entry.shadow.take();

    if let Some(shadow) = shadow {
        if sys.cfg.policy == PtmPolicy::Select {
            // Fold the committed side of every set selection bit back into
            // the home page before dropping the shadow.
            for idx in sel.iter() {
                let home_block = PhysBlock::new(frame, idx);
                mem.copy_block(home_block.on_frame(shadow), home_block);
                out.blocks_restored += 1;
            }
        }
        mem.free(shadow);
        sys.stats.shadow_frees += 1;
        sys.live_shadows -= 1;
        out.shadow_pages_freed += 1;
    }
}

fn recover_swapped_page(
    sys: &mut PtmSystem,
    swap: &mut SwapStore,
    slot: SwapSlot,
    reachable: &FastSet<TavRef>,
    out: &mut RecoveryStats,
) {
    let (head, shadow_slot) = {
        let e = sys.sit.entry(slot).expect("slot listed by the SIT");
        (e.tav_head, e.shadow_slot)
    };
    let mut home_img = swap.peek(slot);
    let shadow_img = shadow_slot.map(|s| swap.peek(s));

    let nodes: Vec<TavRef> = sys.tavs.page_iter(head).collect();
    for r in nodes {
        let write = sys.tavs.write_vec(r);
        if sys.cfg.policy == PtmPolicy::Copy && !write.is_empty() {
            let shadow_img = shadow_img
                .as_ref()
                .expect("dirty overflow implies a shadow page");
            for idx in write.iter() {
                if sys.cfg.granularity.word_in_cache() {
                    let mask = sys.tavs.write_words(r).block_words(idx);
                    copy_image_words(shadow_img, &mut home_img, idx, mask);
                } else {
                    copy_image_block(shadow_img, &mut home_img, idx);
                }
                sys.stats.restore_copies += 1;
                out.blocks_restored += 1;
            }
        }
        if !reachable.contains(&r) {
            out.torn_nodes_repaired += 1;
        }
        sys.tavs.free(r);
        out.tav_nodes_freed += 1;
    }

    let entry = sys.sit.entry_mut(slot).expect("slot listed by the SIT");
    entry.tav_head = None;
    entry.sum_read = BlockVec::EMPTY;
    entry.sum_write = BlockVec::EMPTY;
    entry.contested = BlockVec::EMPTY;
    let sel = std::mem::replace(&mut entry.sel, BlockVec::EMPTY);
    let shadow_slot = entry.shadow_slot.take();

    if let Some(shadow_slot) = shadow_slot {
        if sys.cfg.policy == PtmPolicy::Select {
            let shadow_img = shadow_img.as_ref().expect("shadow slot has an image");
            for idx in sel.iter() {
                copy_image_block(shadow_img, &mut home_img, idx);
                out.blocks_restored += 1;
            }
        }
        swap.discard(shadow_slot);
        // Swapped shadows already left `live_shadows` at swap-out time.
        sys.stats.shadow_frees += 1;
        out.shadow_pages_freed += 1;
    }

    swap.update(slot, home_img);
}
