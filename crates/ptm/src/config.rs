//! PTM configuration: policy, granularity, VTS cache sizes, freeing policy.

use ptm_types::Granularity;

/// Which of the paper's two PTM designs to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PtmPolicy {
    /// Copy-PTM (§3.2.1): speculative data always lives in the home page;
    /// the committed block is backed up to the shadow page on the first
    /// dirty overflow. Fast commit, slow abort.
    Copy,
    /// Select-PTM (§3.2.2): a per-page selection vector says which page
    /// holds the committed version of each block. No data movement on
    /// eviction, commit, or abort.
    #[default]
    Select,
}

/// How Select-PTM shadow pages are reclaimed once no transaction uses them
/// (§3.5.2). Copy-PTM ignores this: its shadows free as soon as the TAV
/// list empties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShadowFreePolicy {
    /// Merge the shadow's committed blocks into the home page when the OS
    /// swaps the home page out.
    #[default]
    MergeOnSwap,
    /// Additionally migrate committed blocks back to the home page whenever
    /// a non-speculative dirty block is written back, toggling its selection
    /// bit; the shadow frees once the selection vector clears.
    LazyMigrate,
}

/// Full PTM configuration.
///
/// # Examples
///
/// ```
/// use ptm_core::{PtmConfig, PtmPolicy};
///
/// let cfg = PtmConfig::select();
/// assert_eq!(cfg.policy, PtmPolicy::Select);
/// assert_eq!(cfg.spt_cache_entries, 512);
/// assert_eq!(cfg.tav_cache_entries, 2048);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PtmConfig {
    /// Copy-PTM or Select-PTM.
    pub policy: PtmPolicy,
    /// Conflict-detection granularity (Figure 5 study).
    pub granularity: Granularity,
    /// SPT cache capacity (the paper simulates 512 fully associative
    /// entries).
    pub spt_cache_entries: usize,
    /// TAV cache capacity (the paper simulates 2048 fully associative
    /// entries).
    pub tav_cache_entries: usize,
    /// Shadow-page reclamation policy for Select-PTM.
    pub shadow_free: ShadowFreePolicy,
    /// Latency of a VTS cache lookup, in cycles.
    pub vts_lookup_latency: u64,
}

impl PtmConfig {
    /// The paper's Select-PTM configuration.
    pub fn select() -> Self {
        PtmConfig {
            policy: PtmPolicy::Select,
            ..Self::base()
        }
    }

    /// The paper's Copy-PTM configuration.
    pub fn copy() -> Self {
        PtmConfig {
            policy: PtmPolicy::Copy,
            ..Self::base()
        }
    }

    /// Select-PTM with the given conflict granularity (Figure 5).
    pub fn select_with_granularity(granularity: Granularity) -> Self {
        PtmConfig {
            granularity,
            ..Self::select()
        }
    }

    fn base() -> Self {
        PtmConfig {
            policy: PtmPolicy::Select,
            granularity: Granularity::Block,
            spt_cache_entries: 512,
            tav_cache_entries: 2048,
            shadow_free: ShadowFreePolicy::MergeOnSwap,
            vts_lookup_latency: 6,
        }
    }
}

impl Default for PtmConfig {
    fn default() -> Self {
        Self::select()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_only_in_policy() {
        let s = PtmConfig::select();
        let c = PtmConfig::copy();
        assert_eq!(s.policy, PtmPolicy::Select);
        assert_eq!(c.policy, PtmPolicy::Copy);
        assert_eq!(s.spt_cache_entries, c.spt_cache_entries);
        assert_eq!(s.tav_cache_entries, c.tav_cache_entries);
    }

    #[test]
    fn granularity_preset() {
        let cfg = PtmConfig::select_with_granularity(Granularity::WordCacheMem);
        assert!(cfg.granularity.word_in_memory());
        assert_eq!(cfg.policy, PtmPolicy::Select);
    }

    #[test]
    fn default_is_select_block() {
        let cfg = PtmConfig::default();
        assert_eq!(cfg.policy, PtmPolicy::Select);
        assert_eq!(cfg.granularity, Granularity::Block);
    }
}
