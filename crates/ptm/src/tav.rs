//! Transaction Access Vectors (TAV): the per-(transaction × page) overflow
//! bookkeeping nodes of Figure 1.
//!
//! Each node records which blocks (and, in `wd:cache+mem` mode, which words)
//! of one page one transaction overflowed, with a read vector and a write
//! vector. Nodes are linked two ways, exactly as the paper draws them:
//!
//! * **horizontally** per page (headed in the SPT/SIT entry) — walked for
//!   conflict detection against every transaction that overflowed the page;
//! * **vertically** per transaction (headed in the T-State entry) — walked
//!   to process commit and abort.
//!
//! Nodes live in an arena ([`TavArena`]) with a free list, mirroring the
//! paper's "freed when the corresponding transaction either commits or
//! aborts".

use ptm_types::{BlockIdx, BlockVec, FrameId, TxId, WordMask, WordVec};
use std::fmt;

/// A handle to a TAV node inside a [`TavArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TavRef(u32);

impl fmt::Display for TavRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tav#{}", self.0)
    }
}

/// One TAV node: a transaction's overflowed access vectors for one page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TavNode {
    /// The transaction this node belongs to.
    pub tx: TxId,
    /// The (home) frame of the page this node describes. Updated when the
    /// page migrates between frames across a swap-out/in cycle.
    pub page: FrameId,
    /// Blocks of the page the transaction read and then overflowed.
    pub read: BlockVec,
    /// Blocks of the page the transaction dirtied and then overflowed.
    pub write: BlockVec,
    /// Word-granular read vector (`wd:cache+mem` only).
    pub read_words: WordVec,
    /// Word-granular write vector (`wd:cache+mem` only).
    pub write_words: WordVec,
    /// Next node in this page's horizontal list.
    pub next_in_page: Option<TavRef>,
    /// Next node in this transaction's vertical list.
    pub next_in_tx: Option<TavRef>,
}

impl TavNode {
    fn new(tx: TxId, page: FrameId) -> Self {
        TavNode {
            tx,
            page,
            read: BlockVec::EMPTY,
            write: BlockVec::EMPTY,
            read_words: WordVec::EMPTY,
            write_words: WordVec::EMPTY,
            next_in_page: None,
            next_in_tx: None,
        }
    }

    /// Records an overflowed read of `block` (and words, if tracking them).
    pub fn record_read(&mut self, block: BlockIdx, words: Option<WordMask>) {
        self.read.set(block);
        if let Some(w) = words {
            self.read_words.set_block_words(block, w);
        }
    }

    /// Records an overflowed write of `block` (and words, if tracking them).
    pub fn record_write(&mut self, block: BlockIdx, words: Option<WordMask>) {
        self.write.set(block);
        if let Some(w) = words {
            self.write_words.set_block_words(block, w);
        }
    }
}

/// Arena of TAV nodes with a free list.
///
/// # Examples
///
/// ```
/// use ptm_core::tav::TavArena;
/// use ptm_types::{FrameId, TxId};
///
/// let mut arena = TavArena::new();
/// let r = arena.alloc(TxId(1), FrameId(0));
/// assert_eq!(arena.get(r).tx, TxId(1));
/// arena.free(r);
/// assert_eq!(arena.live(), 0);
/// ```
#[derive(Debug, Default)]
pub struct TavArena {
    nodes: Vec<Option<TavNode>>,
    free: Vec<u32>,
    live: usize,
    peak: usize,
}

impl TavArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live nodes.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Peak number of simultaneously live nodes.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Allocates a fresh node for `(tx, page)`.
    pub fn alloc(&mut self, tx: TxId, page: FrameId) -> TavRef {
        let node = TavNode::new(tx, page);
        self.live += 1;
        self.peak = self.peak.max(self.live);
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = Some(node);
                TavRef(i)
            }
            None => {
                self.nodes.push(Some(node));
                TavRef((self.nodes.len() - 1) as u32)
            }
        }
    }

    /// Frees a node.
    ///
    /// # Panics
    ///
    /// Panics on double free.
    pub fn free(&mut self, r: TavRef) {
        let slot = &mut self.nodes[r.0 as usize];
        assert!(slot.is_some(), "double free of {r}");
        *slot = None;
        self.free.push(r.0);
        self.live -= 1;
    }

    /// Borrows a node.
    ///
    /// # Panics
    ///
    /// Panics if the node has been freed.
    pub fn get(&self, r: TavRef) -> &TavNode {
        self.nodes[r.0 as usize]
            .as_ref()
            .unwrap_or_else(|| panic!("use after free of {r}"))
    }

    /// Mutably borrows a node.
    ///
    /// # Panics
    ///
    /// Panics if the node has been freed.
    pub fn get_mut(&mut self, r: TavRef) -> &mut TavNode {
        self.nodes[r.0 as usize]
            .as_mut()
            .unwrap_or_else(|| panic!("use after free of {r}"))
    }

    /// Walks a horizontal (per-page) list, collecting the node handles.
    pub fn page_list(&self, head: Option<TavRef>) -> Vec<TavRef> {
        self.walk(head, |n| n.next_in_page)
    }

    /// Walks a vertical (per-transaction) list, collecting the node handles.
    pub fn tx_list(&self, head: Option<TavRef>) -> Vec<TavRef> {
        self.walk(head, |n| n.next_in_tx)
    }

    fn walk<F>(&self, head: Option<TavRef>, next: F) -> Vec<TavRef>
    where
        F: Fn(&TavNode) -> Option<TavRef>,
    {
        let mut out = Vec::new();
        let mut cur = head;
        while let Some(r) = cur {
            out.push(r);
            cur = next(self.get(r));
        }
        out
    }

    /// Finds the node for `tx` in a page list, if present.
    pub fn find_in_page_list(&self, head: Option<TavRef>, tx: TxId) -> Option<TavRef> {
        self.page_list(head).into_iter().find(|r| self.get(*r).tx == tx)
    }

    /// Unlinks `target` from a horizontal list headed at `head`, returning
    /// the new head.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not on the list.
    pub fn unlink_from_page_list(&mut self, head: Option<TavRef>, target: TavRef) -> Option<TavRef> {
        let list = self.page_list(head);
        let pos = list
            .iter()
            .position(|r| *r == target)
            .unwrap_or_else(|| panic!("{target} not on page list"));
        let next = self.get(target).next_in_page;
        if pos == 0 {
            next
        } else {
            let prev = list[pos - 1];
            self.get_mut(prev).next_in_page = next;
            head
        }
    }

    /// ORs together the write vectors of a page list — the VTS write
    /// *summary* vector (§4.2.2).
    pub fn write_summary(&self, head: Option<TavRef>) -> BlockVec {
        self.page_list(head)
            .iter()
            .fold(BlockVec::EMPTY, |acc, r| acc | self.get(*r).write)
    }

    /// ORs together the read vectors of a page list — the VTS read summary
    /// vector.
    pub fn read_summary(&self, head: Option<TavRef>) -> BlockVec {
        self.page_list(head)
            .iter()
            .fold(BlockVec::EMPTY, |acc, r| acc | self.get(*r).read)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_types::WordMask;

    #[test]
    fn alloc_free_reuses_slots() {
        let mut a = TavArena::new();
        let r1 = a.alloc(TxId(1), FrameId(0));
        a.free(r1);
        let r2 = a.alloc(TxId(2), FrameId(1));
        assert_eq!(r1, r2, "slot reused");
        assert_eq!(a.live(), 1);
        assert_eq!(a.peak(), 1);
    }

    #[test]
    fn record_accesses_set_vectors() {
        let mut a = TavArena::new();
        let r = a.alloc(TxId(1), FrameId(0));
        a.get_mut(r).record_read(BlockIdx(3), None);
        a.get_mut(r).record_write(BlockIdx(5), Some(WordMask(0b11)));
        let n = a.get(r);
        assert!(n.read.get(BlockIdx(3)));
        assert!(n.write.get(BlockIdx(5)));
        assert_eq!(n.write_words.block_words(BlockIdx(5)), WordMask(0b11));
        assert!(n.read_words.is_empty(), "words only tracked when provided");
    }

    #[test]
    fn page_list_walk_and_find() {
        let mut a = TavArena::new();
        let r1 = a.alloc(TxId(1), FrameId(0));
        let r2 = a.alloc(TxId(2), FrameId(0));
        a.get_mut(r2).next_in_page = Some(r1);
        let head = Some(r2);
        assert_eq!(a.page_list(head), vec![r2, r1]);
        assert_eq!(a.find_in_page_list(head, TxId(1)), Some(r1));
        assert_eq!(a.find_in_page_list(head, TxId(3)), None);
    }

    #[test]
    fn unlink_head_and_middle() {
        let mut a = TavArena::new();
        let r1 = a.alloc(TxId(1), FrameId(0));
        let r2 = a.alloc(TxId(2), FrameId(0));
        let r3 = a.alloc(TxId(3), FrameId(0));
        // List: r3 -> r2 -> r1
        a.get_mut(r3).next_in_page = Some(r2);
        a.get_mut(r2).next_in_page = Some(r1);

        // Unlink middle.
        let head = a.unlink_from_page_list(Some(r3), r2);
        assert_eq!(head, Some(r3));
        assert_eq!(a.page_list(head), vec![r3, r1]);

        // Unlink head.
        let head = a.unlink_from_page_list(head, r3);
        assert_eq!(head, Some(r1));
        assert_eq!(a.page_list(head), vec![r1]);
    }

    #[test]
    fn summaries_or_all_nodes() {
        let mut a = TavArena::new();
        let r1 = a.alloc(TxId(1), FrameId(0));
        let r2 = a.alloc(TxId(2), FrameId(0));
        a.get_mut(r1).record_write(BlockIdx(0), None);
        a.get_mut(r2).record_write(BlockIdx(1), None);
        a.get_mut(r2).record_read(BlockIdx(2), None);
        a.get_mut(r2).next_in_page = Some(r1);
        let head = Some(r2);
        let w = a.write_summary(head);
        assert!(w.get(BlockIdx(0)) && w.get(BlockIdx(1)));
        assert_eq!(w.count(), 2);
        let r = a.read_summary(head);
        assert!(r.get(BlockIdx(2)));
        assert_eq!(r.count(), 1);
    }

    #[test]
    fn vertical_list_is_independent_of_horizontal() {
        let mut a = TavArena::new();
        // tx 1 touches two pages.
        let p0 = a.alloc(TxId(1), FrameId(0));
        let p1 = a.alloc(TxId(1), FrameId(1));
        a.get_mut(p0).next_in_tx = Some(p1);
        assert_eq!(a.tx_list(Some(p0)), vec![p0, p1]);
        assert_eq!(a.page_list(Some(p0)), vec![p0], "horizontal list separate");
    }

    #[test]
    #[should_panic(expected = "use after free")]
    fn use_after_free_panics() {
        let mut a = TavArena::new();
        let r = a.alloc(TxId(1), FrameId(0));
        a.free(r);
        let _ = a.get(r);
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut a = TavArena::new();
        let r1 = a.alloc(TxId(1), FrameId(0));
        let _r2 = a.alloc(TxId(2), FrameId(0));
        a.free(r1);
        let _r3 = a.alloc(TxId(3), FrameId(0));
        assert_eq!(a.peak(), 2);
    }
}
