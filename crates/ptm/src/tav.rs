//! Transaction Access Vectors (TAV): the per-(transaction × page) overflow
//! bookkeeping nodes of Figure 1.
//!
//! Each node records which blocks (and, in `wd:cache+mem` mode, which words)
//! of one page one transaction overflowed, with a read vector and a write
//! vector. Nodes are linked two ways, exactly as the paper draws them:
//!
//! * **horizontally** per page (headed in the SPT/SIT entry) — walked for
//!   conflict detection against every transaction that overflowed the page;
//! * **vertically** per transaction (headed in the T-State entry) — walked
//!   to process commit and abort.
//!
//! Nodes live in an arena ([`TavArena`]) with a free list, mirroring the
//! paper's "freed when the corresponding transaction either commits or
//! aborts".
//!
//! # Layout
//!
//! The arena is struct-of-arrays: each logical node field lives in its own
//! dense column, indexed by the node's slot. Conflict-detection walks touch
//! only the *hot* columns (`tx`, `page`, block vectors, links — 40 bytes per
//! node across five cache-friendly arrays) while the 128-byte word-granular
//! vectors sit in separate *cold* columns that only the `wd:cache+mem`
//! configurations ever read. Links are raw `u32` slot indices with a `NIL`
//! sentinel, translated to `Option<TavRef>` at the API boundary.

use ptm_types::{BlockIdx, BlockVec, FrameId, TxId, WordMask, WordVec};
use std::fmt;

/// A handle to a TAV node inside a [`TavArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TavRef(u32);

impl fmt::Display for TavRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tav#{}", self.0)
    }
}

/// Internal link sentinel: no next node.
const NIL: u32 = u32::MAX;

#[inline(always)]
fn pack(link: Option<TavRef>) -> u32 {
    match link {
        Some(r) => r.0,
        None => NIL,
    }
}

#[inline(always)]
fn unpack(raw: u32) -> Option<TavRef> {
    (raw != NIL).then_some(TavRef(raw))
}

/// Arena of TAV nodes with a free list, stored struct-of-arrays.
///
/// # Examples
///
/// ```
/// use ptm_core::tav::TavArena;
/// use ptm_types::{FrameId, TxId};
///
/// let mut arena = TavArena::new();
/// let r = arena.alloc(TxId(1), FrameId(0));
/// assert_eq!(arena.tx_of(r), TxId(1));
/// arena.free(r);
/// assert_eq!(arena.live(), 0);
/// ```
#[derive(Debug, Default, Clone)]
pub struct TavArena {
    // Hot columns: everything a conflict-detection or commit walk reads.
    tx: Vec<TxId>,
    page: Vec<FrameId>,
    read: Vec<BlockVec>,
    write: Vec<BlockVec>,
    next_in_page: Vec<u32>,
    next_in_tx: Vec<u32>,
    /// Liveness bitmap backing the use-after-free / double-free checks.
    alive: Vec<bool>,
    // Cold columns: 128-byte word vectors, only touched in word mode.
    read_words: Vec<WordVec>,
    write_words: Vec<WordVec>,
    free: Vec<u32>,
    live: usize,
    peak: usize,
    /// Optional hard cap on live nodes — models a fixed-size VTS arena.
    /// `alloc` itself stays infallible; callers that care pre-check
    /// [`TavArena::at_capacity`] and recover (abort a transaction) instead.
    capacity: Option<usize>,
}

impl TavArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live nodes.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Peak number of simultaneously live nodes.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Installs (or clears) a hard cap on live nodes.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
    }

    /// Current cap on live nodes, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// `true` when a cap is installed and every slot under it is live — the
    /// next `alloc` would exceed the configured arena size.
    pub fn at_capacity(&self) -> bool {
        self.capacity.is_some_and(|cap| self.live >= cap)
    }

    /// Allocates a fresh node for `(tx, page)`.
    pub fn alloc(&mut self, tx: TxId, page: FrameId) -> TavRef {
        self.live += 1;
        self.peak = self.peak.max(self.live);
        match self.free.pop() {
            Some(i) => {
                let s = i as usize;
                self.tx[s] = tx;
                self.page[s] = page;
                self.read[s] = BlockVec::EMPTY;
                self.write[s] = BlockVec::EMPTY;
                self.read_words[s] = WordVec::EMPTY;
                self.write_words[s] = WordVec::EMPTY;
                self.next_in_page[s] = NIL;
                self.next_in_tx[s] = NIL;
                self.alive[s] = true;
                TavRef(i)
            }
            None => {
                self.tx.push(tx);
                self.page.push(page);
                self.read.push(BlockVec::EMPTY);
                self.write.push(BlockVec::EMPTY);
                self.read_words.push(WordVec::EMPTY);
                self.write_words.push(WordVec::EMPTY);
                self.next_in_page.push(NIL);
                self.next_in_tx.push(NIL);
                self.alive.push(true);
                TavRef((self.tx.len() - 1) as u32)
            }
        }
    }

    /// Frees a node.
    ///
    /// # Panics
    ///
    /// Panics on double free.
    pub fn free(&mut self, r: TavRef) {
        assert!(self.alive[r.0 as usize], "double free of {r}");
        self.alive[r.0 as usize] = false;
        self.free.push(r.0);
        self.live -= 1;
    }

    #[inline(always)]
    fn check(&self, r: TavRef) -> usize {
        if !self.alive[r.0 as usize] {
            dead_node(r);
        }
        r.0 as usize
    }

    /// The transaction a node belongs to.
    ///
    /// # Panics
    ///
    /// Panics (like every accessor) if the node has been freed.
    #[inline(always)]
    pub fn tx_of(&self, r: TavRef) -> TxId {
        let s = self.check(r);
        self.tx[s]
    }

    /// The (home) frame of the page a node describes.
    #[inline(always)]
    pub fn page_of(&self, r: TavRef) -> FrameId {
        let s = self.check(r);
        self.page[s]
    }

    /// Blocks of the page the transaction read and then overflowed.
    #[inline(always)]
    pub fn read_vec(&self, r: TavRef) -> BlockVec {
        let s = self.check(r);
        self.read[s]
    }

    /// Blocks of the page the transaction dirtied and then overflowed.
    #[inline(always)]
    pub fn write_vec(&self, r: TavRef) -> BlockVec {
        let s = self.check(r);
        self.write[s]
    }

    /// Word-granular read vector (`wd:cache+mem` only).
    #[inline(always)]
    pub fn read_words(&self, r: TavRef) -> &WordVec {
        let s = self.check(r);
        &self.read_words[s]
    }

    /// Word-granular write vector (`wd:cache+mem` only).
    #[inline(always)]
    pub fn write_words(&self, r: TavRef) -> &WordVec {
        let s = self.check(r);
        &self.write_words[s]
    }

    /// Next node in the page's horizontal list — the TAV cursor step.
    #[inline(always)]
    pub fn next_in_page(&self, r: TavRef) -> Option<TavRef> {
        let s = self.check(r);
        unpack(self.next_in_page[s])
    }

    /// Next node in the transaction's vertical list — the TAV cursor step.
    #[inline(always)]
    pub fn next_in_tx(&self, r: TavRef) -> Option<TavRef> {
        let s = self.check(r);
        unpack(self.next_in_tx[s])
    }

    /// Relinks a node's horizontal (per-page) successor.
    #[inline(always)]
    pub fn set_next_in_page(&mut self, r: TavRef, next: Option<TavRef>) {
        let s = self.check(r);
        self.next_in_page[s] = pack(next);
    }

    /// Relinks a node's vertical (per-transaction) successor.
    #[inline(always)]
    pub fn set_next_in_tx(&mut self, r: TavRef, next: Option<TavRef>) {
        let s = self.check(r);
        self.next_in_tx[s] = pack(next);
    }

    /// Records an overflowed read of `block` (and words, if tracking them).
    #[inline]
    pub fn record_read(&mut self, r: TavRef, block: BlockIdx, words: Option<WordMask>) {
        let s = self.check(r);
        self.read[s].set(block);
        if let Some(w) = words {
            self.read_words[s].set_block_words(block, w);
        }
    }

    /// Records an overflowed write of `block` (and words, if tracking them).
    #[inline]
    pub fn record_write(&mut self, r: TavRef, block: BlockIdx, words: Option<WordMask>) {
        let s = self.check(r);
        self.write[s].set(block);
        if let Some(w) = words {
            self.write_words[s].set_block_words(block, w);
        }
    }

    /// Walks a horizontal (per-page) list without allocating.
    #[inline]
    pub fn page_iter(&self, head: Option<TavRef>) -> ListIter<'_> {
        ListIter {
            arena: self,
            cur: head,
            link: Link::Page,
        }
    }

    /// Walks a vertical (per-transaction) list without allocating.
    #[inline]
    pub fn tx_iter(&self, head: Option<TavRef>) -> ListIter<'_> {
        ListIter {
            arena: self,
            cur: head,
            link: Link::Tx,
        }
    }

    /// Length of a horizontal list.
    pub fn page_list_len(&self, head: Option<TavRef>) -> usize {
        self.page_iter(head).count()
    }

    /// Finds the node for `tx` in a page list, if present (single pass).
    #[inline]
    pub fn find_in_page_list(&self, head: Option<TavRef>, tx: TxId) -> Option<TavRef> {
        self.page_iter(head).find(|r| self.tx_of(*r) == tx)
    }

    /// Unlinks `target` from a horizontal list headed at `head` in a single
    /// pass, returning the new head.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not on the list.
    pub fn unlink_from_page_list(
        &mut self,
        head: Option<TavRef>,
        target: TavRef,
    ) -> Option<TavRef> {
        let next = self.next_in_page(target);
        if head == Some(target) {
            return next;
        }
        let mut prev = head.unwrap_or_else(|| panic!("{target} not on page list"));
        while self.next_in_page(prev) != Some(target) {
            prev = self
                .next_in_page(prev)
                .unwrap_or_else(|| panic!("{target} not on page list"));
        }
        self.set_next_in_page(prev, next);
        head
    }

    /// Single-pass retain over a horizontal list: every node failing `keep`
    /// is unlinked *and freed*; returns the new head. The caller remains
    /// responsible for any external bookkeeping keyed by the freed nodes.
    pub fn retain_page_list<F>(&mut self, head: Option<TavRef>, mut keep: F) -> Option<TavRef>
    where
        F: FnMut(&TavArena, TavRef) -> bool,
    {
        let mut head = head;
        let mut prev: Option<TavRef> = None;
        let mut cur = head;
        while let Some(r) = cur {
            let next = self.next_in_page(r);
            if keep(self, r) {
                prev = Some(r);
            } else {
                match prev {
                    None => head = next,
                    Some(p) => self.set_next_in_page(p, next),
                }
                self.free(r);
            }
            cur = next;
        }
        head
    }

    /// Repoints every node of a horizontal list at a new home frame (the
    /// page migrated across a swap-out/in cycle) in a single mutating pass.
    pub fn repoint_page_list(&mut self, head: Option<TavRef>, new_page: FrameId) {
        let mut cur = head;
        while let Some(r) = cur {
            let s = self.check(r);
            self.page[s] = new_page;
            cur = unpack(self.next_in_page[s]);
        }
    }

    /// ORs together the read and write vectors of a page list in one pass —
    /// the VTS summary vectors (§4.2.2).
    pub fn block_summaries(&self, head: Option<TavRef>) -> (BlockVec, BlockVec) {
        let mut r_acc = BlockVec::EMPTY;
        let mut w_acc = BlockVec::EMPTY;
        let mut cur = head;
        while let Some(r) = cur {
            let s = self.check(r);
            r_acc = r_acc | self.read[s];
            w_acc = w_acc | self.write[s];
            cur = unpack(self.next_in_page[s]);
        }
        (r_acc, w_acc)
    }

    /// ORs together the write vectors of a page list — the VTS write
    /// *summary* vector (§4.2.2).
    pub fn write_summary(&self, head: Option<TavRef>) -> BlockVec {
        self.page_iter(head)
            .fold(BlockVec::EMPTY, |acc, r| acc | self.write_vec(r))
    }

    /// ORs together the read vectors of a page list — the VTS read summary
    /// vector.
    pub fn read_summary(&self, head: Option<TavRef>) -> BlockVec {
        self.page_iter(head)
            .fold(BlockVec::EMPTY, |acc, r| acc | self.read_vec(r))
    }

    /// ORs together the word-granular write vectors of a page list, in
    /// place — no 128-byte temporaries per node.
    pub fn word_write_summary(&self, head: Option<TavRef>) -> WordVec {
        let mut acc = WordVec::EMPTY;
        let mut cur = head;
        while let Some(r) = cur {
            let s = self.check(r);
            acc.union_with(&self.write_words[s]);
            cur = unpack(self.next_in_page[s]);
        }
        acc
    }
}

#[cold]
#[inline(never)]
fn dead_node(r: TavRef) -> ! {
    panic!("use after free of {r}");
}

/// Which link field a [`ListIter`] follows.
#[derive(Debug, Clone, Copy)]
enum Link {
    Page,
    Tx,
}

/// Allocation-free walk of a TAV linked list.
///
/// Reads each node's next pointer *before* yielding it, so the yielded node
/// may be mutated (but not unlinked or freed) between `next` calls — for
/// unlink-while-walking, use [`TavArena::retain_page_list`] or an explicit
/// cursor that re-reads the link after the mutation.
#[derive(Debug)]
pub struct ListIter<'a> {
    arena: &'a TavArena,
    cur: Option<TavRef>,
    link: Link,
}

impl Iterator for ListIter<'_> {
    type Item = TavRef;

    #[inline]
    fn next(&mut self) -> Option<TavRef> {
        let r = self.cur?;
        self.cur = match self.link {
            Link::Page => self.arena.next_in_page(r),
            Link::Tx => self.arena.next_in_tx(r),
        };
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_types::WordMask;

    #[test]
    fn alloc_free_reuses_slots() {
        let mut a = TavArena::new();
        let r1 = a.alloc(TxId(1), FrameId(0));
        a.free(r1);
        let r2 = a.alloc(TxId(2), FrameId(1));
        assert_eq!(r1, r2, "slot reused");
        assert_eq!(a.live(), 1);
        assert_eq!(a.peak(), 1);
    }

    #[test]
    fn reused_slot_starts_clean() {
        let mut a = TavArena::new();
        let r1 = a.alloc(TxId(1), FrameId(0));
        a.record_write(r1, BlockIdx(5), Some(WordMask(0b11)));
        a.set_next_in_page(r1, None);
        a.free(r1);
        let r2 = a.alloc(TxId(2), FrameId(1));
        assert_eq!(r1, r2);
        assert!(a.read_vec(r2).is_empty());
        assert!(a.write_vec(r2).is_empty());
        assert!(a.write_words(r2).is_empty());
        assert_eq!(a.next_in_page(r2), None);
        assert_eq!(a.next_in_tx(r2), None);
    }

    #[test]
    fn record_accesses_set_vectors() {
        let mut a = TavArena::new();
        let r = a.alloc(TxId(1), FrameId(0));
        a.record_read(r, BlockIdx(3), None);
        a.record_write(r, BlockIdx(5), Some(WordMask(0b11)));
        assert!(a.read_vec(r).get(BlockIdx(3)));
        assert!(a.write_vec(r).get(BlockIdx(5)));
        assert_eq!(a.write_words(r).block_words(BlockIdx(5)), WordMask(0b11));
        assert!(
            a.read_words(r).is_empty(),
            "words only tracked when provided"
        );
    }

    #[test]
    fn page_list_walk_and_find() {
        let mut a = TavArena::new();
        let r1 = a.alloc(TxId(1), FrameId(0));
        let r2 = a.alloc(TxId(2), FrameId(0));
        a.set_next_in_page(r2, Some(r1));
        let head = Some(r2);
        assert_eq!(a.page_iter(head).collect::<Vec<_>>(), vec![r2, r1]);
        assert_eq!(a.page_list_len(head), 2);
        assert_eq!(a.find_in_page_list(head, TxId(1)), Some(r1));
        assert_eq!(a.find_in_page_list(head, TxId(3)), None);
    }

    #[test]
    fn unlink_head_and_middle() {
        let mut a = TavArena::new();
        let r1 = a.alloc(TxId(1), FrameId(0));
        let r2 = a.alloc(TxId(2), FrameId(0));
        let r3 = a.alloc(TxId(3), FrameId(0));
        // List: r3 -> r2 -> r1
        a.set_next_in_page(r3, Some(r2));
        a.set_next_in_page(r2, Some(r1));

        // Unlink middle.
        let head = a.unlink_from_page_list(Some(r3), r2);
        assert_eq!(head, Some(r3));
        assert_eq!(a.page_iter(head).collect::<Vec<_>>(), vec![r3, r1]);

        // Unlink head.
        let head = a.unlink_from_page_list(head, r3);
        assert_eq!(head, Some(r1));
        assert_eq!(a.page_iter(head).collect::<Vec<_>>(), vec![r1]);
    }

    /// Regression test for the single-pass unlink: removing the head, a
    /// middle node, and the tail must each keep every surviving node's
    /// `next_in_page` link intact.
    #[test]
    fn unlink_head_middle_tail_preserves_links() {
        fn build(a: &mut TavArena) -> (Vec<TavRef>, Option<TavRef>) {
            let refs: Vec<TavRef> = (0..4).map(|i| a.alloc(TxId(i), FrameId(0))).collect();
            for w in refs.windows(2) {
                a.set_next_in_page(w[0], Some(w[1]));
            }
            let head = Some(refs[0]);
            (refs, head)
        }

        // Head.
        let mut a = TavArena::new();
        let (refs, head) = build(&mut a);
        let head = a.unlink_from_page_list(head, refs[0]);
        assert_eq!(
            a.page_iter(head).collect::<Vec<_>>(),
            vec![refs[1], refs[2], refs[3]]
        );
        assert_eq!(
            a.next_in_page(refs[0]),
            Some(refs[1]),
            "unlinked node keeps its link"
        );

        // Middle.
        let mut a = TavArena::new();
        let (refs, head) = build(&mut a);
        let head = a.unlink_from_page_list(head, refs[2]);
        assert_eq!(
            a.page_iter(head).collect::<Vec<_>>(),
            vec![refs[0], refs[1], refs[3]]
        );

        // Tail.
        let mut a = TavArena::new();
        let (refs, head) = build(&mut a);
        let head = a.unlink_from_page_list(head, refs[3]);
        assert_eq!(
            a.page_iter(head).collect::<Vec<_>>(),
            vec![refs[0], refs[1], refs[2]]
        );
        assert_eq!(
            a.next_in_page(refs[2]),
            None,
            "new tail terminates the list"
        );
    }

    #[test]
    #[should_panic(expected = "not on page list")]
    fn unlink_missing_node_panics() {
        let mut a = TavArena::new();
        let r1 = a.alloc(TxId(1), FrameId(0));
        let r2 = a.alloc(TxId(2), FrameId(1));
        let _ = a.unlink_from_page_list(Some(r1), r2);
    }

    #[test]
    fn retain_unlinks_and_frees_failing_nodes() {
        let mut a = TavArena::new();
        let refs: Vec<TavRef> = (0..5).map(|i| a.alloc(TxId(i), FrameId(0))).collect();
        for w in refs.windows(2) {
            a.set_next_in_page(w[0], Some(w[1]));
        }
        let head = a.retain_page_list(Some(refs[0]), |a, r| a.tx_of(r).0 % 2 == 0);
        assert_eq!(
            a.page_iter(head).collect::<Vec<_>>(),
            vec![refs[0], refs[2], refs[4]]
        );
        assert_eq!(a.live(), 3, "failing nodes were freed");

        // Dropping the head works too.
        let head = a.retain_page_list(head, |a, r| a.tx_of(r) != TxId(0));
        assert_eq!(
            a.page_iter(head).collect::<Vec<_>>(),
            vec![refs[2], refs[4]]
        );
        assert_eq!(a.live(), 2);
    }

    #[test]
    fn repoint_updates_every_node() {
        let mut a = TavArena::new();
        let r1 = a.alloc(TxId(1), FrameId(0));
        let r2 = a.alloc(TxId(2), FrameId(0));
        a.set_next_in_page(r2, Some(r1));
        a.repoint_page_list(Some(r2), FrameId(9));
        assert_eq!(a.page_of(r1), FrameId(9));
        assert_eq!(a.page_of(r2), FrameId(9));
    }

    #[test]
    fn summaries_or_all_nodes() {
        let mut a = TavArena::new();
        let r1 = a.alloc(TxId(1), FrameId(0));
        let r2 = a.alloc(TxId(2), FrameId(0));
        a.record_write(r1, BlockIdx(0), None);
        a.record_write(r2, BlockIdx(1), None);
        a.record_read(r2, BlockIdx(2), None);
        a.set_next_in_page(r2, Some(r1));
        let head = Some(r2);
        let w = a.write_summary(head);
        assert!(w.get(BlockIdx(0)) && w.get(BlockIdx(1)));
        assert_eq!(w.count(), 2);
        let r = a.read_summary(head);
        assert!(r.get(BlockIdx(2)));
        assert_eq!(r.count(), 1);
        assert_eq!(a.block_summaries(head), (r, w), "one-pass fold agrees");
    }

    #[test]
    fn word_write_summary_unions_in_place() {
        let mut a = TavArena::new();
        let r1 = a.alloc(TxId(1), FrameId(0));
        let r2 = a.alloc(TxId(2), FrameId(0));
        a.record_write(r1, BlockIdx(0), Some(WordMask(0b01)));
        a.record_write(r2, BlockIdx(0), Some(WordMask(0b10)));
        a.set_next_in_page(r2, Some(r1));
        let sum = a.word_write_summary(Some(r2));
        assert_eq!(sum.block_words(BlockIdx(0)), WordMask(0b11));
    }

    #[test]
    fn vertical_list_is_independent_of_horizontal() {
        let mut a = TavArena::new();
        // tx 1 touches two pages.
        let p0 = a.alloc(TxId(1), FrameId(0));
        let p1 = a.alloc(TxId(1), FrameId(1));
        a.set_next_in_tx(p0, Some(p1));
        assert_eq!(a.tx_iter(Some(p0)).collect::<Vec<_>>(), vec![p0, p1]);
        assert_eq!(
            a.page_iter(Some(p0)).collect::<Vec<_>>(),
            vec![p0],
            "horizontal list separate"
        );
    }

    #[test]
    #[should_panic(expected = "use after free")]
    fn use_after_free_panics() {
        let mut a = TavArena::new();
        let r = a.alloc(TxId(1), FrameId(0));
        a.free(r);
        let _ = a.tx_of(r);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = TavArena::new();
        let r = a.alloc(TxId(1), FrameId(0));
        a.free(r);
        a.free(r);
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut a = TavArena::new();
        let r1 = a.alloc(TxId(1), FrameId(0));
        let _r2 = a.alloc(TxId(2), FrameId(0));
        a.free(r1);
        let _r3 = a.alloc(TxId(3), FrameId(0));
        assert_eq!(a.peak(), 2);
    }
}
