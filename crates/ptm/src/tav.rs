//! Transaction Access Vectors (TAV): the per-(transaction × page) overflow
//! bookkeeping nodes of Figure 1.
//!
//! Each node records which blocks (and, in `wd:cache+mem` mode, which words)
//! of one page one transaction overflowed, with a read vector and a write
//! vector. Nodes are linked two ways, exactly as the paper draws them:
//!
//! * **horizontally** per page (headed in the SPT/SIT entry) — walked for
//!   conflict detection against every transaction that overflowed the page;
//! * **vertically** per transaction (headed in the T-State entry) — walked
//!   to process commit and abort.
//!
//! Nodes live in an arena ([`TavArena`]) with a free list, mirroring the
//! paper's "freed when the corresponding transaction either commits or
//! aborts".

use ptm_types::{BlockIdx, BlockVec, FrameId, TxId, WordMask, WordVec};
use std::fmt;

/// A handle to a TAV node inside a [`TavArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TavRef(u32);

impl fmt::Display for TavRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tav#{}", self.0)
    }
}

/// One TAV node: a transaction's overflowed access vectors for one page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TavNode {
    /// The transaction this node belongs to.
    pub tx: TxId,
    /// The (home) frame of the page this node describes. Updated when the
    /// page migrates between frames across a swap-out/in cycle.
    pub page: FrameId,
    /// Blocks of the page the transaction read and then overflowed.
    pub read: BlockVec,
    /// Blocks of the page the transaction dirtied and then overflowed.
    pub write: BlockVec,
    /// Word-granular read vector (`wd:cache+mem` only).
    pub read_words: WordVec,
    /// Word-granular write vector (`wd:cache+mem` only).
    pub write_words: WordVec,
    /// Next node in this page's horizontal list.
    pub next_in_page: Option<TavRef>,
    /// Next node in this transaction's vertical list.
    pub next_in_tx: Option<TavRef>,
}

impl TavNode {
    fn new(tx: TxId, page: FrameId) -> Self {
        TavNode {
            tx,
            page,
            read: BlockVec::EMPTY,
            write: BlockVec::EMPTY,
            read_words: WordVec::EMPTY,
            write_words: WordVec::EMPTY,
            next_in_page: None,
            next_in_tx: None,
        }
    }

    /// Records an overflowed read of `block` (and words, if tracking them).
    pub fn record_read(&mut self, block: BlockIdx, words: Option<WordMask>) {
        self.read.set(block);
        if let Some(w) = words {
            self.read_words.set_block_words(block, w);
        }
    }

    /// Records an overflowed write of `block` (and words, if tracking them).
    pub fn record_write(&mut self, block: BlockIdx, words: Option<WordMask>) {
        self.write.set(block);
        if let Some(w) = words {
            self.write_words.set_block_words(block, w);
        }
    }
}

/// Arena of TAV nodes with a free list.
///
/// # Examples
///
/// ```
/// use ptm_core::tav::TavArena;
/// use ptm_types::{FrameId, TxId};
///
/// let mut arena = TavArena::new();
/// let r = arena.alloc(TxId(1), FrameId(0));
/// assert_eq!(arena.get(r).tx, TxId(1));
/// arena.free(r);
/// assert_eq!(arena.live(), 0);
/// ```
#[derive(Debug, Default, Clone)]
pub struct TavArena {
    nodes: Vec<Option<TavNode>>,
    free: Vec<u32>,
    live: usize,
    peak: usize,
    /// Optional hard cap on live nodes — models a fixed-size VTS arena.
    /// `alloc` itself stays infallible; callers that care pre-check
    /// [`TavArena::at_capacity`] and recover (abort a transaction) instead.
    capacity: Option<usize>,
}

impl TavArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live nodes.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Peak number of simultaneously live nodes.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Installs (or clears) a hard cap on live nodes.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
    }

    /// Current cap on live nodes, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// `true` when a cap is installed and every slot under it is live — the
    /// next `alloc` would exceed the configured arena size.
    pub fn at_capacity(&self) -> bool {
        self.capacity.is_some_and(|cap| self.live >= cap)
    }

    /// Allocates a fresh node for `(tx, page)`.
    pub fn alloc(&mut self, tx: TxId, page: FrameId) -> TavRef {
        let node = TavNode::new(tx, page);
        self.live += 1;
        self.peak = self.peak.max(self.live);
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = Some(node);
                TavRef(i)
            }
            None => {
                self.nodes.push(Some(node));
                TavRef((self.nodes.len() - 1) as u32)
            }
        }
    }

    /// Frees a node.
    ///
    /// # Panics
    ///
    /// Panics on double free.
    pub fn free(&mut self, r: TavRef) {
        let slot = &mut self.nodes[r.0 as usize];
        assert!(slot.is_some(), "double free of {r}");
        *slot = None;
        self.free.push(r.0);
        self.live -= 1;
    }

    /// Borrows a node.
    ///
    /// # Panics
    ///
    /// Panics if the node has been freed.
    pub fn get(&self, r: TavRef) -> &TavNode {
        self.nodes[r.0 as usize]
            .as_ref()
            .unwrap_or_else(|| panic!("use after free of {r}"))
    }

    /// Mutably borrows a node.
    ///
    /// # Panics
    ///
    /// Panics if the node has been freed.
    pub fn get_mut(&mut self, r: TavRef) -> &mut TavNode {
        self.nodes[r.0 as usize]
            .as_mut()
            .unwrap_or_else(|| panic!("use after free of {r}"))
    }

    /// Walks a horizontal (per-page) list without allocating.
    pub fn page_iter(&self, head: Option<TavRef>) -> ListIter<'_> {
        ListIter {
            arena: self,
            cur: head,
            link: Link::Page,
        }
    }

    /// Walks a vertical (per-transaction) list without allocating.
    pub fn tx_iter(&self, head: Option<TavRef>) -> ListIter<'_> {
        ListIter {
            arena: self,
            cur: head,
            link: Link::Tx,
        }
    }

    /// Length of a horizontal list.
    pub fn page_list_len(&self, head: Option<TavRef>) -> usize {
        self.page_iter(head).count()
    }

    /// Finds the node for `tx` in a page list, if present (single pass).
    pub fn find_in_page_list(&self, head: Option<TavRef>, tx: TxId) -> Option<TavRef> {
        self.page_iter(head).find(|r| self.get(*r).tx == tx)
    }

    /// Unlinks `target` from a horizontal list headed at `head` in a single
    /// pass, returning the new head.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not on the list.
    pub fn unlink_from_page_list(
        &mut self,
        head: Option<TavRef>,
        target: TavRef,
    ) -> Option<TavRef> {
        let next = self.get(target).next_in_page;
        if head == Some(target) {
            return next;
        }
        let mut prev = head.unwrap_or_else(|| panic!("{target} not on page list"));
        while self.get(prev).next_in_page != Some(target) {
            prev = self
                .get(prev)
                .next_in_page
                .unwrap_or_else(|| panic!("{target} not on page list"));
        }
        self.get_mut(prev).next_in_page = next;
        head
    }

    /// Single-pass retain over a horizontal list: every node failing `keep`
    /// is unlinked *and freed*; returns the new head. The caller remains
    /// responsible for any external bookkeeping keyed by the freed nodes.
    pub fn retain_page_list<F>(&mut self, head: Option<TavRef>, mut keep: F) -> Option<TavRef>
    where
        F: FnMut(&TavNode) -> bool,
    {
        let mut head = head;
        let mut prev: Option<TavRef> = None;
        let mut cur = head;
        while let Some(r) = cur {
            let node = self.get(r);
            let next = node.next_in_page;
            if keep(node) {
                prev = Some(r);
            } else {
                match prev {
                    None => head = next,
                    Some(p) => self.get_mut(p).next_in_page = next,
                }
                self.free(r);
            }
            cur = next;
        }
        head
    }

    /// Repoints every node of a horizontal list at a new home frame (the
    /// page migrated across a swap-out/in cycle) in a single mutating pass.
    pub fn repoint_page_list(&mut self, head: Option<TavRef>, new_page: FrameId) {
        let mut cur = head;
        while let Some(r) = cur {
            let node = self.get_mut(r);
            node.page = new_page;
            cur = node.next_in_page;
        }
    }

    /// ORs together the read and write vectors of a page list in one pass —
    /// the VTS summary vectors (§4.2.2).
    pub fn block_summaries(&self, head: Option<TavRef>) -> (BlockVec, BlockVec) {
        self.page_iter(head)
            .fold((BlockVec::EMPTY, BlockVec::EMPTY), |(r_acc, w_acc), r| {
                let n = self.get(r);
                (r_acc | n.read, w_acc | n.write)
            })
    }

    /// ORs together the write vectors of a page list — the VTS write
    /// *summary* vector (§4.2.2).
    pub fn write_summary(&self, head: Option<TavRef>) -> BlockVec {
        self.page_iter(head)
            .fold(BlockVec::EMPTY, |acc, r| acc | self.get(r).write)
    }

    /// ORs together the read vectors of a page list — the VTS read summary
    /// vector.
    pub fn read_summary(&self, head: Option<TavRef>) -> BlockVec {
        self.page_iter(head)
            .fold(BlockVec::EMPTY, |acc, r| acc | self.get(r).read)
    }

    /// ORs together the word-granular write vectors of a page list.
    pub fn word_write_summary(&self, head: Option<TavRef>) -> WordVec {
        self.page_iter(head)
            .fold(WordVec::EMPTY, |acc, r| acc | self.get(r).write_words)
    }
}

/// Which link field a [`ListIter`] follows.
#[derive(Debug, Clone, Copy)]
enum Link {
    Page,
    Tx,
}

/// Allocation-free walk of a TAV linked list.
///
/// Reads each node's next pointer *before* yielding it, so the yielded node
/// may be mutated (but not unlinked or freed) between `next` calls — for
/// unlink-while-walking, use [`TavArena::retain_page_list`] or an explicit
/// cursor that re-reads the link after the mutation.
#[derive(Debug)]
pub struct ListIter<'a> {
    arena: &'a TavArena,
    cur: Option<TavRef>,
    link: Link,
}

impl Iterator for ListIter<'_> {
    type Item = TavRef;

    fn next(&mut self) -> Option<TavRef> {
        let r = self.cur?;
        let node = self.arena.get(r);
        self.cur = match self.link {
            Link::Page => node.next_in_page,
            Link::Tx => node.next_in_tx,
        };
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_types::WordMask;

    #[test]
    fn alloc_free_reuses_slots() {
        let mut a = TavArena::new();
        let r1 = a.alloc(TxId(1), FrameId(0));
        a.free(r1);
        let r2 = a.alloc(TxId(2), FrameId(1));
        assert_eq!(r1, r2, "slot reused");
        assert_eq!(a.live(), 1);
        assert_eq!(a.peak(), 1);
    }

    #[test]
    fn record_accesses_set_vectors() {
        let mut a = TavArena::new();
        let r = a.alloc(TxId(1), FrameId(0));
        a.get_mut(r).record_read(BlockIdx(3), None);
        a.get_mut(r).record_write(BlockIdx(5), Some(WordMask(0b11)));
        let n = a.get(r);
        assert!(n.read.get(BlockIdx(3)));
        assert!(n.write.get(BlockIdx(5)));
        assert_eq!(n.write_words.block_words(BlockIdx(5)), WordMask(0b11));
        assert!(n.read_words.is_empty(), "words only tracked when provided");
    }

    #[test]
    fn page_list_walk_and_find() {
        let mut a = TavArena::new();
        let r1 = a.alloc(TxId(1), FrameId(0));
        let r2 = a.alloc(TxId(2), FrameId(0));
        a.get_mut(r2).next_in_page = Some(r1);
        let head = Some(r2);
        assert_eq!(a.page_iter(head).collect::<Vec<_>>(), vec![r2, r1]);
        assert_eq!(a.page_list_len(head), 2);
        assert_eq!(a.find_in_page_list(head, TxId(1)), Some(r1));
        assert_eq!(a.find_in_page_list(head, TxId(3)), None);
    }

    #[test]
    fn unlink_head_and_middle() {
        let mut a = TavArena::new();
        let r1 = a.alloc(TxId(1), FrameId(0));
        let r2 = a.alloc(TxId(2), FrameId(0));
        let r3 = a.alloc(TxId(3), FrameId(0));
        // List: r3 -> r2 -> r1
        a.get_mut(r3).next_in_page = Some(r2);
        a.get_mut(r2).next_in_page = Some(r1);

        // Unlink middle.
        let head = a.unlink_from_page_list(Some(r3), r2);
        assert_eq!(head, Some(r3));
        assert_eq!(a.page_iter(head).collect::<Vec<_>>(), vec![r3, r1]);

        // Unlink head.
        let head = a.unlink_from_page_list(head, r3);
        assert_eq!(head, Some(r1));
        assert_eq!(a.page_iter(head).collect::<Vec<_>>(), vec![r1]);
    }

    /// Regression test for the single-pass unlink: removing the head, a
    /// middle node, and the tail must each keep every surviving node's
    /// `next_in_page` link intact.
    #[test]
    fn unlink_head_middle_tail_preserves_links() {
        fn build(a: &mut TavArena) -> (Vec<TavRef>, Option<TavRef>) {
            let refs: Vec<TavRef> = (0..4).map(|i| a.alloc(TxId(i), FrameId(0))).collect();
            for w in refs.windows(2) {
                a.get_mut(w[0]).next_in_page = Some(w[1]);
            }
            let head = Some(refs[0]);
            (refs, head)
        }

        // Head.
        let mut a = TavArena::new();
        let (refs, head) = build(&mut a);
        let head = a.unlink_from_page_list(head, refs[0]);
        assert_eq!(
            a.page_iter(head).collect::<Vec<_>>(),
            vec![refs[1], refs[2], refs[3]]
        );
        assert_eq!(
            a.get(refs[0]).next_in_page,
            Some(refs[1]),
            "unlinked node keeps its link"
        );

        // Middle.
        let mut a = TavArena::new();
        let (refs, head) = build(&mut a);
        let head = a.unlink_from_page_list(head, refs[2]);
        assert_eq!(
            a.page_iter(head).collect::<Vec<_>>(),
            vec![refs[0], refs[1], refs[3]]
        );

        // Tail.
        let mut a = TavArena::new();
        let (refs, head) = build(&mut a);
        let head = a.unlink_from_page_list(head, refs[3]);
        assert_eq!(
            a.page_iter(head).collect::<Vec<_>>(),
            vec![refs[0], refs[1], refs[2]]
        );
        assert_eq!(
            a.get(refs[2]).next_in_page,
            None,
            "new tail terminates the list"
        );
    }

    #[test]
    #[should_panic(expected = "not on page list")]
    fn unlink_missing_node_panics() {
        let mut a = TavArena::new();
        let r1 = a.alloc(TxId(1), FrameId(0));
        let r2 = a.alloc(TxId(2), FrameId(1));
        let _ = a.unlink_from_page_list(Some(r1), r2);
    }

    #[test]
    fn retain_unlinks_and_frees_failing_nodes() {
        let mut a = TavArena::new();
        let refs: Vec<TavRef> = (0..5).map(|i| a.alloc(TxId(i), FrameId(0))).collect();
        for w in refs.windows(2) {
            a.get_mut(w[0]).next_in_page = Some(w[1]);
        }
        let head = a.retain_page_list(Some(refs[0]), |n| n.tx.0 % 2 == 0);
        assert_eq!(
            a.page_iter(head).collect::<Vec<_>>(),
            vec![refs[0], refs[2], refs[4]]
        );
        assert_eq!(a.live(), 3, "failing nodes were freed");

        // Dropping the head works too.
        let head = a.retain_page_list(head, |n| n.tx != TxId(0));
        assert_eq!(
            a.page_iter(head).collect::<Vec<_>>(),
            vec![refs[2], refs[4]]
        );
        assert_eq!(a.live(), 2);
    }

    #[test]
    fn repoint_updates_every_node() {
        let mut a = TavArena::new();
        let r1 = a.alloc(TxId(1), FrameId(0));
        let r2 = a.alloc(TxId(2), FrameId(0));
        a.get_mut(r2).next_in_page = Some(r1);
        a.repoint_page_list(Some(r2), FrameId(9));
        assert_eq!(a.get(r1).page, FrameId(9));
        assert_eq!(a.get(r2).page, FrameId(9));
    }

    #[test]
    fn summaries_or_all_nodes() {
        let mut a = TavArena::new();
        let r1 = a.alloc(TxId(1), FrameId(0));
        let r2 = a.alloc(TxId(2), FrameId(0));
        a.get_mut(r1).record_write(BlockIdx(0), None);
        a.get_mut(r2).record_write(BlockIdx(1), None);
        a.get_mut(r2).record_read(BlockIdx(2), None);
        a.get_mut(r2).next_in_page = Some(r1);
        let head = Some(r2);
        let w = a.write_summary(head);
        assert!(w.get(BlockIdx(0)) && w.get(BlockIdx(1)));
        assert_eq!(w.count(), 2);
        let r = a.read_summary(head);
        assert!(r.get(BlockIdx(2)));
        assert_eq!(r.count(), 1);
        assert_eq!(a.block_summaries(head), (r, w), "one-pass fold agrees");
    }

    #[test]
    fn vertical_list_is_independent_of_horizontal() {
        let mut a = TavArena::new();
        // tx 1 touches two pages.
        let p0 = a.alloc(TxId(1), FrameId(0));
        let p1 = a.alloc(TxId(1), FrameId(1));
        a.get_mut(p0).next_in_tx = Some(p1);
        assert_eq!(a.tx_iter(Some(p0)).collect::<Vec<_>>(), vec![p0, p1]);
        assert_eq!(
            a.page_iter(Some(p0)).collect::<Vec<_>>(),
            vec![p0],
            "horizontal list separate"
        );
    }

    #[test]
    #[should_panic(expected = "use after free")]
    fn use_after_free_panics() {
        let mut a = TavArena::new();
        let r = a.alloc(TxId(1), FrameId(0));
        a.free(r);
        let _ = a.get(r);
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut a = TavArena::new();
        let r1 = a.alloc(TxId(1), FrameId(0));
        let _r2 = a.alloc(TxId(2), FrameId(0));
        a.free(r1);
        let _r3 = a.alloc(TxId(3), FrameId(0));
        assert_eq!(a.peak(), 2);
    }
}
