//! PTM event counters.

use std::fmt;

/// Counters for every PTM mechanism the paper discusses; the benchmark
/// harness reads these to build Table 1 and to explain Figure 4/5 deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PtmStats {
    /// Transactions logically committed.
    pub commits: u64,
    /// Transactions logically aborted.
    pub aborts: u64,
    /// Clean (read-only) transactional blocks evicted into TAV state.
    pub clean_overflows: u64,
    /// Dirty transactional blocks evicted into home/shadow pages.
    pub dirty_overflows: u64,
    /// Shadow pages allocated.
    pub shadow_allocs: u64,
    /// Shadow pages returned to the free list.
    pub shadow_frees: u64,
    /// Copy-PTM: committed blocks backed up home→shadow on first dirty
    /// overflow.
    pub backup_copies: u64,
    /// Copy-PTM: blocks restored shadow→home on abort.
    pub restore_copies: u64,
    /// Select-PTM: selection bits toggled at commit.
    pub selection_toggles: u64,
    /// Word-granularity Select-PTM: blocks merged by copying written words
    /// (multiple overflow writers of one block).
    pub word_merge_copies: u64,
    /// Conflicts detected against overflowed state.
    pub overflow_conflicts: u64,
    /// SPT cache hits / misses.
    pub spt_cache_hits: u64,
    /// SPT cache misses (each costs a shadow-page-table walk).
    pub spt_cache_misses: u64,
    /// TAV cache hits / misses.
    pub tav_cache_hits: u64,
    /// TAV cache misses (each costs a memory access to the TAV node).
    pub tav_cache_misses: u64,
    /// TAV nodes touched by memory walks.
    pub tav_walk_nodes: u64,
    /// Conflict checks resolved by the per-page summary vectors alone —
    /// the O(1) fast path that never touched the TAV list.
    pub conflict_checks_fast: u64,
    /// Conflict checks whose summary test hit, forcing a per-node TAV walk.
    pub conflict_checks_slow: u64,
    /// Transactional pages swapped out (home+shadow pairs).
    pub tx_swap_outs: u64,
    /// Transactional pages swapped back in.
    pub tx_swap_ins: u64,
    /// Select-PTM lazy-migrate block migrations.
    pub lazy_migrations: u64,
    /// Peak number of live TAV nodes.
    pub peak_tav_nodes: u64,
    /// Peak number of simultaneously allocated shadow pages.
    pub peak_shadow_pages: u64,
    /// Sum over committed transactions of the pages they dirtied in the
    /// overflow structures (drives Table 1's "ideal" shadow overhead:
    /// shadow pages live at any instant if shadows were reclaimed the
    /// moment a transaction commits).
    pub tx_dirty_page_sum: u64,
    /// Times a shadow-page (or swap-in frame) allocation found physical
    /// memory exhausted and had to recover instead of panicking.
    pub frame_exhaustions: u64,
    /// Times a TAV-node allocation found the arena at capacity.
    pub tav_exhaustions: u64,
    /// Transactions aborted to free resources during exhaustion recovery.
    pub exhaustion_aborts: u64,
    /// Operations retried after an exhaustion-recovery abort freed room.
    pub exhaustion_retries: u64,
}

impl PtmStats {
    /// Total overflowed blocks (clean + dirty).
    pub fn overflows(&self) -> u64 {
        self.clean_overflows + self.dirty_overflows
    }

    /// Average number of pages a transaction held dirty in the overflow
    /// structures.
    pub fn avg_tx_dirty_pages(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.tx_dirty_page_sum as f64 / self.commits as f64
        }
    }
}

impl fmt::Display for PtmStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "commits={} aborts={} overflows={} (clean {} / dirty {})",
            self.commits,
            self.aborts,
            self.overflows(),
            self.clean_overflows,
            self.dirty_overflows
        )?;
        writeln!(
            f,
            "shadow: alloc={} free={} peak={} | copies: backup={} restore={} merge={}",
            self.shadow_allocs,
            self.shadow_frees,
            self.peak_shadow_pages,
            self.backup_copies,
            self.restore_copies,
            self.word_merge_copies
        )?;
        writeln!(
            f,
            "vts: spt {}/{} tav {}/{} walk-nodes={} | checks fast/slow {}/{} conflicts={} toggles={}",
            self.spt_cache_hits,
            self.spt_cache_misses,
            self.tav_cache_hits,
            self.tav_cache_misses,
            self.tav_walk_nodes,
            self.conflict_checks_fast,
            self.conflict_checks_slow,
            self.overflow_conflicts,
            self.selection_toggles
        )?;
        write!(
            f,
            "exhaustion: frames={} tav={} recovery aborts={} retries={}",
            self.frame_exhaustions,
            self.tav_exhaustions,
            self.exhaustion_aborts,
            self.exhaustion_retries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_total_sums_clean_and_dirty() {
        let s = PtmStats {
            clean_overflows: 3,
            dirty_overflows: 4,
            ..Default::default()
        };
        assert_eq!(s.overflows(), 7);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", PtmStats::default()).is_empty());
    }
}
