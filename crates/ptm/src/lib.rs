//! Page-based Transactional Memory (PTM) — the primary contribution of
//! *"Unbounded Page-Based Transactional Memory"* (ASPLOS 2006), reproduced
//! as a library.
//!
//! PTM virtualizes a hardware transactional memory past cache overflow,
//! context switches, paging and inter-process shared memory by pairing each
//! overflowing physical page (the *home page*) with a *shadow page* and
//! keeping per-page bit-vector bookkeeping in virtual-memory-adjacent
//! structures:
//!
//! * [`spt::ShadowPageTable`] / [`sit::SwapIndexTable`] — per-page anchor
//!   (shadow pointer, selection vector, TAV list head), indexed by physical
//!   page number while resident and by swap index while paged out;
//! * [`tav::TavArena`] — Transaction Access Vector nodes, one per
//!   (transaction × page), linked horizontally per page and vertically per
//!   transaction;
//! * [`tstate::TStateTable`] — per-transaction status for atomic logical
//!   commit/abort followed by lazy cleanup;
//! * [`vts`] — the Virtual Transaction Supervisor's SPT/TAV caches in the
//!   memory controller, modeled as LRU presence trackers that charge
//!   realistic walk costs on misses;
//! * [`system::PtmSystem`] — the orchestrating type implementing both
//!   **Copy-PTM** (speculative data in the home page, backup copy on first
//!   dirty overflow, restore on abort) and **Select-PTM** (selection vectors,
//!   zero-copy commit *and* abort).
//!
//! # Examples
//!
//! ```
//! use ptm_core::{PtmConfig, PtmSystem};
//! use ptm_types::{FrameId, TxId};
//!
//! let mut ptm = PtmSystem::new(PtmConfig::select());
//! ptm.on_page_alloc(FrameId(0));
//! ptm.begin(TxId(0), None);
//! assert!(ptm.is_live(TxId(0)));
//! assert!(!ptm.has_overflows());
//! ```

pub mod config;
pub mod durability;
pub mod recovery;
pub mod sit;
pub mod spt;
pub mod stats;
pub mod system;
pub mod tav;
pub mod tstate;
pub mod vts;

pub use config::{PtmConfig, PtmPolicy, ShadowFreePolicy};
pub use durability::{
    parse_force_policy, scan_records, undo_payload_checksum, DurStats, DurabilityConfig,
    DurableLog, ForcePolicy, LogRecord, LogRecordKind, UndoPayload,
};
pub use recovery::{recover, recover_log, tear_youngest_tav_tail, RecoveryStats};
pub use stats::PtmStats;
pub use system::{AccessKind, ConflictOutcome, Exhaustion, PtmSystem, SwapOut};
pub use tstate::TxStatus;
