//! The Virtual Transaction Supervisor's hardware caches (§4.2).
//!
//! The VTS sits in the memory controller and caches the SPT entries (with
//! precomputed read/write *summary* vectors) and the TAV nodes of recently
//! accessed pages, so the common-case conflict check and home/shadow
//! selection cost only cache lookups.
//!
//! Functionally the authoritative SPT/TAV structures in memory are always
//! consulted (so the model can never go stale); these caches model *timing*:
//! each lookup is classified hit or miss, and a miss costs a hardware walk
//! of the in-memory structures — real accesses through the shared memory
//! pipeline, which is how VTS pressure shows up in Figure 4.

use ptm_types::Cycle;
use std::collections::HashMap;
use std::hash::Hash;

/// Outcome of touching an LRU-tracked cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Touch {
    /// The key was cached.
    Hit,
    /// The key was not cached; it has been brought in. If bringing it in
    /// displaced a dirty entry, that entry's key needs a writeback.
    Miss {
        /// Whether the displaced victim was dirty (costs a memory write).
        evicted_dirty: bool,
    },
}

impl Touch {
    /// Returns `true` on a hit.
    pub fn is_hit(self) -> bool {
        matches!(self, Touch::Hit)
    }
}

/// A fully associative LRU *presence* tracker with bounded capacity.
///
/// Tracks which keys a hardware cache would currently hold, plus a dirty bit
/// per key; contents always come from the authoritative structures.
///
/// # Examples
///
/// ```
/// use ptm_core::vts::LruTracker;
///
/// let mut t: LruTracker<u32> = LruTracker::new(2);
/// assert!(!t.touch(1).is_hit());
/// assert!(!t.touch(2).is_hit());
/// assert!(t.touch(1).is_hit());
/// assert!(!t.touch(3).is_hit()); // evicts 2 (LRU)
/// assert!(!t.touch(2).is_hit());
/// ```
#[derive(Debug, Clone)]
pub struct LruTracker<K: Eq + Hash + Clone> {
    capacity: usize,
    entries: HashMap<K, (u64, bool)>,
    clock: u64,
}

impl<K: Eq + Hash + Clone> LruTracker<K> {
    /// Creates a tracker holding up to `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruTracker {
            capacity,
            entries: HashMap::new(),
            clock: 0,
        }
    }

    /// Touches `key`: refreshes it if present, otherwise inserts it,
    /// evicting the LRU entry when full.
    pub fn touch(&mut self, key: K) -> Touch {
        self.clock += 1;
        if let Some((lru, _)) = self.entries.get_mut(&key) {
            *lru = self.clock;
            return Touch::Hit;
        }
        let mut evicted_dirty = false;
        if self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, (lru, _))| *lru)
                .map(|(k, (_, dirty))| (k.clone(), *dirty))
                .expect("full cache has entries");
            evicted_dirty = victim.1;
            self.entries.remove(&victim.0);
        }
        self.entries.insert(key, (self.clock, false));
        Touch::Miss { evicted_dirty }
    }

    /// Marks a (present) key dirty; no-op when absent.
    pub fn mark_dirty(&mut self, key: &K) {
        if let Some((_, dirty)) = self.entries.get_mut(key) {
            *dirty = true;
        }
    }

    /// Drops a key without a writeback (structure moved/freed in memory).
    pub fn remove(&mut self, key: &K) {
        self.entries.remove(key);
    }

    /// Drops every key matching the predicate.
    pub fn remove_matching<F: FnMut(&K) -> bool>(&mut self, mut pred: F) {
        self.entries.retain(|k, _| !pred(k));
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Timing cost of one VTS operation, in resource-level terms; the caller
/// converts memory walks into pipelined accesses on the [`ptm_cache::SystemBus`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VtsCost {
    /// Number of VTS cache lookups performed.
    pub lookups: u32,
    /// Number of in-memory structure accesses (SPT entry reads, TAV node
    /// reads, dirty writebacks) a walk required.
    pub memory_accesses: u32,
}

impl VtsCost {
    /// Adds another cost onto this one.
    pub fn add(&mut self, other: VtsCost) {
        self.lookups += other.lookups;
        self.memory_accesses += other.memory_accesses;
    }

    /// Converts to a completion cycle: lookups are pipelined at
    /// `lookup_latency` each (taking the max as they overlap the request),
    /// memory accesses go through the controller's pipelined memory slots.
    pub fn charge(self, now: Cycle, lookup_latency: u64, bus: &mut ptm_cache::SystemBus) -> Cycle {
        let mut done = now + lookup_latency * u64::from(self.lookups.min(2));
        for _ in 0..self.memory_accesses {
            done = bus.controller_mem_access(done.max(now));
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_cache::{BusTimings, SystemBus};

    #[test]
    fn lru_tracker_hits_and_misses() {
        let mut t = LruTracker::new(2);
        assert_eq!(
            t.touch(10),
            Touch::Miss {
                evicted_dirty: false
            }
        );
        assert_eq!(t.touch(10), Touch::Hit);
        t.touch(20);
        t.touch(30); // evicts 10
        assert!(!t.touch(10).is_hit());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn dirty_eviction_is_reported() {
        let mut t = LruTracker::new(1);
        t.touch(1);
        t.mark_dirty(&1);
        assert_eq!(
            t.touch(2),
            Touch::Miss {
                evicted_dirty: true
            }
        );
        assert_eq!(
            t.touch(3),
            Touch::Miss {
                evicted_dirty: false
            }
        );
    }

    #[test]
    fn remove_matching_filters_keys() {
        let mut t = LruTracker::new(4);
        t.touch((1u32, 1u32));
        t.touch((1, 2));
        t.touch((2, 1));
        t.remove_matching(|k| k.0 == 1);
        assert_eq!(t.len(), 1);
        assert!(t.touch((2, 1)).is_hit());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = LruTracker::<u8>::new(0);
    }

    #[test]
    fn cost_charge_uses_memory_pipeline() {
        let mut bus = SystemBus::new(BusTimings::default());
        let cost = VtsCost {
            lookups: 1,
            memory_accesses: 2,
        };
        let done = cost.charge(0, 6, &mut bus);
        // Chained: first access from cycle 6 → 206, second → 406 (the walk
        // is sequential pointer chasing).
        assert_eq!(done, 406);
        assert_eq!(bus.stats().mem_accesses, 2);
    }

    #[test]
    fn zero_cost_is_free() {
        let mut bus = SystemBus::new(BusTimings::default());
        let done = VtsCost::default().charge(100, 6, &mut bus);
        assert_eq!(done, 100);
    }
}
