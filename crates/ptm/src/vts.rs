//! The Virtual Transaction Supervisor's hardware caches (§4.2).
//!
//! The VTS sits in the memory controller and caches the SPT entries (with
//! precomputed read/write *summary* vectors) and the TAV nodes of recently
//! accessed pages, so the common-case conflict check and home/shadow
//! selection cost only cache lookups.
//!
//! Functionally the authoritative SPT/TAV structures in memory are always
//! consulted (so the model can never go stale); these caches model *timing*:
//! each lookup is classified hit or miss, and a miss costs a hardware walk
//! of the in-memory structures — real accesses through the shared memory
//! pipeline, which is how VTS pressure shows up in Figure 4.

use ptm_types::{Cycle, FastMap};
use std::hash::Hash;

/// Outcome of touching an LRU-tracked cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Touch {
    /// The key was cached.
    Hit,
    /// The key was not cached; it has been brought in. If bringing it in
    /// displaced a dirty entry, that entry's key needs a writeback.
    Miss {
        /// Whether the displaced victim was dirty (costs a memory write).
        evicted_dirty: bool,
    },
}

impl Touch {
    /// Returns `true` on a hit.
    pub fn is_hit(self) -> bool {
        matches!(self, Touch::Hit)
    }
}

/// Slab index used as a null link.
const NIL: u32 = u32::MAX;

/// A node in the tracker's recency list (a slab-allocated intrusive
/// doubly-linked list: head = most recent, tail = eviction victim).
#[derive(Debug, Clone)]
struct LruNode<K> {
    key: K,
    prev: u32,
    next: u32,
    dirty: bool,
}

/// A fully associative LRU *presence* tracker with bounded capacity.
///
/// Tracks which keys a hardware cache would currently hold, plus a dirty bit
/// per key; contents always come from the authoritative structures. Touch
/// and eviction are O(1): recency is an intrusive doubly-linked list over a
/// slab, so finding the LRU victim is reading the list tail rather than
/// scanning every entry.
///
/// # Examples
///
/// ```
/// use ptm_core::vts::LruTracker;
///
/// let mut t: LruTracker<u32> = LruTracker::new(2);
/// assert!(!t.touch(1).is_hit());
/// assert!(!t.touch(2).is_hit());
/// assert!(t.touch(1).is_hit());
/// assert!(!t.touch(3).is_hit()); // evicts 2 (LRU)
/// assert!(!t.touch(2).is_hit());
/// ```
#[derive(Debug, Clone)]
pub struct LruTracker<K: Eq + Hash + Clone> {
    capacity: usize,
    index: FastMap<K, u32>,
    nodes: Vec<LruNode<K>>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
}

impl<K: Eq + Hash + Clone> LruTracker<K> {
    /// Creates a tracker holding up to `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruTracker {
            capacity,
            index: FastMap::default(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Detaches node `i` from the recency list (its slot stays allocated).
    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let n = &self.nodes[i as usize];
            (n.prev, n.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.nodes[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n as usize].prev = prev,
        }
    }

    /// Links node `i` at the head (most recently used).
    fn push_front(&mut self, i: u32) {
        let old = self.head;
        {
            let n = &mut self.nodes[i as usize];
            n.prev = NIL;
            n.next = old;
        }
        match old {
            NIL => self.tail = i,
            h => self.nodes[h as usize].prev = i,
        }
        self.head = i;
    }

    /// Touches `key`: refreshes it if present, otherwise inserts it,
    /// evicting the LRU entry when full.
    pub fn touch(&mut self, key: K) -> Touch {
        if let Some(&i) = self.index.get(&key) {
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return Touch::Hit;
        }
        let mut evicted_dirty = false;
        let slot = if self.index.len() >= self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            let node = &mut self.nodes[victim as usize];
            evicted_dirty = node.dirty;
            let old_key = std::mem::replace(&mut node.key, key.clone());
            node.dirty = false;
            self.index.remove(&old_key);
            victim
        } else if let Some(slot) = self.free.pop() {
            let node = &mut self.nodes[slot as usize];
            node.key = key.clone();
            node.dirty = false;
            slot
        } else {
            let slot = self.nodes.len() as u32;
            self.nodes.push(LruNode {
                key: key.clone(),
                prev: NIL,
                next: NIL,
                dirty: false,
            });
            slot
        };
        self.index.insert(key, slot);
        self.push_front(slot);
        Touch::Miss { evicted_dirty }
    }

    /// Marks a (present) key dirty; no-op when absent.
    pub fn mark_dirty(&mut self, key: &K) {
        if let Some(&i) = self.index.get(key) {
            self.nodes[i as usize].dirty = true;
        }
    }

    /// Drops a key without a writeback (structure moved/freed in memory).
    pub fn remove(&mut self, key: &K) {
        if let Some(i) = self.index.remove(key) {
            self.unlink(i);
            self.free.push(i);
        }
    }

    /// Drops every key matching the predicate.
    pub fn remove_matching<F: FnMut(&K) -> bool>(&mut self, mut pred: F) {
        let mut i = self.head;
        while i != NIL {
            let next = self.nodes[i as usize].next;
            if pred(&self.nodes[i as usize].key) {
                self.index.remove(&self.nodes[i as usize].key);
                self.unlink(i);
                self.free.push(i);
            }
            i = next;
        }
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

/// Timing cost of one VTS operation, in resource-level terms; the caller
/// converts memory walks into pipelined accesses on the [`ptm_cache::SystemBus`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VtsCost {
    /// Number of VTS cache lookups performed.
    pub lookups: u32,
    /// Number of in-memory structure accesses (SPT entry reads, TAV node
    /// reads, dirty writebacks) a walk required.
    pub memory_accesses: u32,
}

impl VtsCost {
    /// Adds another cost onto this one.
    pub fn add(&mut self, other: VtsCost) {
        self.lookups += other.lookups;
        self.memory_accesses += other.memory_accesses;
    }

    /// Converts to a completion cycle: lookups are pipelined at
    /// `lookup_latency` each (taking the max as they overlap the request),
    /// memory accesses go through the controller's pipelined memory slots.
    pub fn charge(self, now: Cycle, lookup_latency: u64, bus: &mut ptm_cache::SystemBus) -> Cycle {
        let done = now + lookup_latency * u64::from(self.lookups.min(2));
        // The whole walk is charged as one batched burst: each access chains
        // off the previous completion, identical to a per-access loop.
        bus.controller_mem_accesses(done, self.memory_accesses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_cache::{BusTimings, SystemBus};

    #[test]
    fn lru_tracker_hits_and_misses() {
        let mut t = LruTracker::new(2);
        assert_eq!(
            t.touch(10),
            Touch::Miss {
                evicted_dirty: false
            }
        );
        assert_eq!(t.touch(10), Touch::Hit);
        t.touch(20);
        t.touch(30); // evicts 10
        assert!(!t.touch(10).is_hit());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn dirty_eviction_is_reported() {
        let mut t = LruTracker::new(1);
        t.touch(1);
        t.mark_dirty(&1);
        assert_eq!(
            t.touch(2),
            Touch::Miss {
                evicted_dirty: true
            }
        );
        assert_eq!(
            t.touch(3),
            Touch::Miss {
                evicted_dirty: false
            }
        );
    }

    #[test]
    fn remove_matching_filters_keys() {
        let mut t = LruTracker::new(4);
        t.touch((1u32, 1u32));
        t.touch((1, 2));
        t.touch((2, 1));
        t.remove_matching(|k| k.0 == 1);
        assert_eq!(t.len(), 1);
        assert!(t.touch((2, 1)).is_hit());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = LruTracker::<u8>::new(0);
    }

    #[test]
    fn removed_slots_are_reused() {
        let mut t = LruTracker::new(3);
        t.touch(1u32);
        t.touch(2);
        t.touch(3);
        t.remove(&2);
        assert_eq!(t.len(), 2);
        assert!(!t.touch(4).is_hit(), "room after removal, no eviction");
        assert_eq!(t.len(), 3);
        assert!(t.touch(1).is_hit());
        assert!(t.touch(3).is_hit());
    }

    /// The linked-list tracker must agree, operation for operation, with a
    /// brute-force model that scans for the oldest entry (the semantics the
    /// tracker had when it stored explicit clocks).
    #[test]
    fn matches_min_clock_scan_model() {
        struct Model {
            capacity: usize,
            entries: Vec<(u32, u64, bool)>, // (key, last-touch clock, dirty)
            clock: u64,
        }
        impl Model {
            fn touch(&mut self, key: u32) -> Touch {
                self.clock += 1;
                if let Some(e) = self.entries.iter_mut().find(|e| e.0 == key) {
                    e.1 = self.clock;
                    return Touch::Hit;
                }
                let mut evicted_dirty = false;
                if self.entries.len() >= self.capacity {
                    let (pos, _) = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.1)
                        .expect("full");
                    evicted_dirty = self.entries.remove(pos).2;
                }
                self.entries.push((key, self.clock, false));
                Touch::Miss { evicted_dirty }
            }
        }

        let mut rng = ptm_types::SplitMix64::new(0xC0FFEE);
        let mut t = LruTracker::new(8);
        let mut m = Model {
            capacity: 8,
            entries: Vec::new(),
            clock: 0,
        };
        for _ in 0..4000 {
            let r = rng.next_u64();
            let key = (r >> 8) as u32 % 24;
            match r % 10 {
                0 => {
                    t.mark_dirty(&key);
                    if let Some(e) = m.entries.iter_mut().find(|e| e.0 == key) {
                        e.2 = true;
                    }
                }
                1 => {
                    t.remove(&key);
                    m.entries.retain(|e| e.0 != key);
                }
                2 => {
                    t.remove_matching(|k| k % 5 == key % 5);
                    m.entries.retain(|e| e.0 % 5 != key % 5);
                }
                _ => {
                    assert_eq!(t.touch(key), m.touch(key), "key {key}");
                }
            }
            assert_eq!(t.len(), m.entries.len());
        }
    }

    #[test]
    fn cost_charge_uses_memory_pipeline() {
        let mut bus = SystemBus::new(BusTimings::default());
        let cost = VtsCost {
            lookups: 1,
            memory_accesses: 2,
        };
        let done = cost.charge(0, 6, &mut bus);
        // Chained: first access from cycle 6 → 206, second → 406 (the walk
        // is sequential pointer chasing).
        assert_eq!(done, 406);
        assert_eq!(bus.stats().mem_accesses, 2);
    }

    #[test]
    fn zero_cost_is_free() {
        let mut bus = SystemBus::new(BusTimings::default());
        let done = VtsCost::default().charge(100, 6, &mut bus);
        assert_eq!(done, 100);
    }
}
