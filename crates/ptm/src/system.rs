//! The PTM system: overflow handling, conflict detection, commit/abort,
//! paging, and shadow-page management, tying together the SPT, SIT, TAV,
//! T-State and VTS structures.
//!
//! This is the paper's contribution in one type, [`PtmSystem`]. The
//! machine-level simulator calls it:
//!
//! * on every page allocation ([`PtmSystem::on_page_alloc`]);
//! * on every cache miss while any transaction has overflowed
//!   ([`PtmSystem::check_conflict`]);
//! * on every transactional cache-line eviction
//!   ([`PtmSystem::on_tx_eviction`]);
//! * at transaction boundaries ([`PtmSystem::begin`], [`PtmSystem::commit`],
//!   [`PtmSystem::abort`]);
//! * from the OS paging path ([`PtmSystem::on_swap_out`],
//!   [`PtmSystem::on_swap_in`]) and the write-back path
//!   ([`PtmSystem::on_nontx_dirty_writeback`]).

use crate::config::{PtmConfig, PtmPolicy, ShadowFreePolicy};
use crate::sit::{SitEntry, SwapIndexTable};
use crate::spt::{ShadowPageTable, SptEntry, SptMeta};
use crate::stats::PtmStats;
use crate::tav::{TavArena, TavRef};
use crate::tstate::{TStateTable, TxStatus};
use crate::vts::{LruTracker, VtsCost};
use ptm_cache::{SystemBus, TxLineMeta};
use ptm_mem::{PhysicalMemory, SpecBlock, SwapStore};
use ptm_types::{
    BlockIdx, BlockVec, Cycle, FastMap, FrameId, PhysBlock, SwapSlot, TxId, WordIdx, WordMask,
    BLOCK_SIZE, WORD_SIZE,
};

/// Whether an access is a read or a write, for conflict classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load (RAW conflicts against overflowed writers).
    Read,
    /// A store (WAR/WAW conflicts against overflowed readers and writers).
    Write,
}

/// The result of an overflow-structure conflict check (§4.3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConflictOutcome {
    /// Live transactions whose overflowed accesses conflict with this one.
    /// The caller arbitrates (oldest wins) and aborts the losers.
    pub conflicts: Vec<TxId>,
    /// Lazy commit/abort cleanup is still processing this page; the access
    /// must stall until this cycle (§4.5).
    pub stall_until: Option<Cycle>,
    /// A different transaction has an overflowed *read* of this block, so a
    /// read miss must not be granted exclusive permission (§4.3).
    pub deny_exclusive: bool,
    /// When the conflict check itself completed (VTS lookup/walk timing).
    pub done_at: Cycle,
}

/// The outcome of swapping a transactional page out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapOut {
    /// Where the home page's data went (store this in the page table).
    pub home_slot: SwapSlot,
}

/// A PTM resource pool ran dry mid-operation.
///
/// Returned instead of panicking by the allocation-bearing entry points
/// ([`PtmSystem::on_tx_eviction`], [`PtmSystem::on_swap_in`]) so the caller
/// can recover — the simulator aborts the youngest live transaction to free
/// resources and retries the operation. Every occurrence is counted in
/// [`PtmStats::frame_exhaustions`] / [`PtmStats::tav_exhaustions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exhaustion {
    /// The physical frame pool is empty (shadow allocation or swap-in).
    Frames,
    /// The TAV arena hit its configured capacity.
    TavNodes,
}

impl std::fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Exhaustion::Frames => write!(f, "physical frame pool exhausted"),
            Exhaustion::TavNodes => write!(f, "TAV arena at capacity"),
        }
    }
}

/// The Page-based Transactional Memory system.
///
/// See the crate-level documentation for the model; see [`PtmConfig`] for
/// the Copy/Select policy switch and the Figure 5 granularities.
#[derive(Debug, Clone)]
pub struct PtmSystem {
    pub(crate) cfg: PtmConfig,
    pub(crate) spt: ShadowPageTable,
    pub(crate) sit: SwapIndexTable,
    pub(crate) tavs: TavArena,
    pub(crate) tstate: TStateTable,
    pub(crate) spt_cache: LruTracker<FrameId>,
    pub(crate) tav_cache: LruTracker<(FrameId, TxId)>,
    /// Pages whose lazy commit/abort cleanup completes at the given cycle.
    pub(crate) cleanup_pages: FastMap<FrameId, Cycle>,
    pub(crate) live_shadows: u64,
    pub(crate) stats: PtmStats,
}

impl PtmSystem {
    /// Creates a PTM system.
    pub fn new(cfg: PtmConfig) -> Self {
        PtmSystem {
            spt: ShadowPageTable::new(),
            sit: SwapIndexTable::new(),
            tavs: TavArena::new(),
            tstate: TStateTable::new(),
            spt_cache: LruTracker::new(cfg.spt_cache_entries),
            tav_cache: LruTracker::new(cfg.tav_cache_entries),
            cleanup_pages: FastMap::default(),
            live_shadows: 0,
            stats: PtmStats::default(),
            cfg,
        }
    }

    /// A clone capturing only the *durable* subset of the system: the
    /// SPT/SIT/TAV/T-State tables, shadow accounting and counters. The
    /// volatile VTS caches and lazy-cleanup timers come back empty — a
    /// crash loses them, recovery rebuilds nothing from them, and cloning
    /// them per sweep point was pure waste (see
    /// [`crate::recovery::recover`], which drops them unconditionally).
    pub fn durable_clone(&self) -> PtmSystem {
        PtmSystem {
            cfg: self.cfg,
            spt: self.spt.clone(),
            sit: self.sit.clone(),
            tavs: self.tavs.clone(),
            tstate: self.tstate.clone(),
            spt_cache: LruTracker::new(self.cfg.spt_cache_entries),
            tav_cache: LruTracker::new(self.cfg.tav_cache_entries),
            cleanup_pages: FastMap::default(),
            live_shadows: self.live_shadows,
            stats: self.stats,
        }
    }

    /// Whether every volatile (cache-like) part of the system is empty.
    /// Crash images assert this: only durable state may be captured.
    pub fn volatile_state_is_empty(&self) -> bool {
        self.spt_cache.is_empty() && self.tav_cache.is_empty() && self.cleanup_pages.is_empty()
    }

    /// The active configuration.
    pub fn config(&self) -> &PtmConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &PtmStats {
        &self.stats
    }

    /// The T-State table (transaction statuses).
    pub fn tstate(&self) -> &TStateTable {
        &self.tstate
    }

    /// Mutable T-State access (nesting bookkeeping lives there).
    pub fn tstate_mut(&mut self) -> &mut TStateTable {
        &mut self.tstate
    }

    /// Registers a freshly allocated physical page.
    pub fn on_page_alloc(&mut self, frame: FrameId) {
        self.spt.on_page_alloc(frame);
    }

    /// Read-only view of a page's SPT entry (the cold column; summary
    /// vectors are exposed separately via [`Self::spt_summaries`]).
    pub fn spt_entry(&self, frame: FrameId) -> Option<&SptMeta> {
        self.spt.entry(frame)
    }

    /// The page's (read, write) conflict summary vectors, straight off the
    /// SPT's dense hot columns (`EMPTY` pair for unregistered frames).
    pub fn spt_summaries(&self, frame: FrameId) -> (BlockVec, BlockVec) {
        self.spt.summaries(frame)
    }

    /// Read-only view of the TAV arena (introspection: tests assert the
    /// per-page summary vectors stay equal to the union over the TAV list).
    pub fn tav_arena(&self) -> &TavArena {
        &self.tavs
    }

    /// Read-only view of a swapped-out page's SIT entry.
    pub fn sit_entry(&self, home_slot: SwapSlot) -> Option<&SitEntry> {
        self.sit.entry(home_slot)
    }

    /// Starts a transaction (outermost begin).
    pub fn begin(&mut self, tx: TxId, ordered_seq: Option<u64>) {
        self.tstate.begin(tx, ordered_seq);
    }

    /// Whether any transactional block currently lives in the overflow
    /// structures — the paper's global overflow flag (§3.1). When false,
    /// misses skip PTM entirely and in-cache coherence handles everything.
    pub fn has_overflows(&self) -> bool {
        self.tavs.live() > 0
    }

    /// Whether `tx` is currently running.
    pub fn is_live(&self, tx: TxId) -> bool {
        self.tstate.is_live(tx)
    }

    /// Whether `tx` has overflowed any state out of the caches (a non-empty
    /// vertical TAV list). A transaction with no overflow commits and
    /// aborts without touching memory, shadow pages or selection vectors —
    /// the speculative executor uses this to scope invalidation to the
    /// words the commit actually publishes instead of poisoning the world.
    pub fn tx_has_overflow(&self, tx: TxId) -> bool {
        self.tstate.status(tx).is_some() && self.tstate.entry(tx).tav_head.is_some()
    }

    /// Installs (or clears) a hard cap on live TAV nodes — fault injection
    /// uses this to manufacture arena-capacity pressure.
    pub fn set_tav_capacity(&mut self, capacity: Option<usize>) {
        self.tavs.set_capacity(capacity);
    }

    /// Records a transaction aborted purely to relieve resource exhaustion.
    pub fn note_exhaustion_abort(&mut self) {
        self.stats.exhaustion_aborts += 1;
    }

    /// Records an operation retried after exhaustion recovery freed room.
    pub fn note_exhaustion_retry(&mut self) {
        self.stats.exhaustion_retries += 1;
    }

    // ------------------------------------------------------------------
    // Conflict detection (§3.3, §4.3)
    // ------------------------------------------------------------------

    /// Checks an access that missed the cache against the overflowed
    /// transactional state.
    ///
    /// `requester` is `None` for non-transactional code; such accesses still
    /// conflict-check, and the caller must abort every conflicting
    /// transaction (§2.3.3).
    pub fn check_conflict(
        &mut self,
        requester: Option<TxId>,
        block: PhysBlock,
        word: WordIdx,
        kind: AccessKind,
        now: Cycle,
        bus: &mut SystemBus,
    ) -> ConflictOutcome {
        let frame = block.frame();
        let idx = block.index();
        let mut outcome = ConflictOutcome {
            done_at: now,
            ..Default::default()
        };

        self.prune_cleanup(now);
        if let Some(&until) = self.cleanup_pages.get(&frame) {
            if until > now {
                outcome.stall_until = Some(until);
            }
        }

        let Some(entry) = self.spt.entry(frame) else {
            return outcome;
        };
        let head = entry.tav_head;
        // The incrementally maintained per-page summary vectors — what the
        // VTS reads out of its cached SPT entry; one load pair off the dense
        // hot columns.
        let (rsum, wsum) = self.spt.summaries(frame);

        let mut cost = VtsCost {
            lookups: 1,
            ..Default::default()
        };
        match self.spt_cache.touch(frame) {
            crate::vts::Touch::Hit => self.stats.spt_cache_hits += 1,
            crate::vts::Touch::Miss { evicted_dirty } => {
                self.stats.spt_cache_misses += 1;
                // Walk: read the SPT entry, then every TAV node to rebuild
                // the summary vectors; each walked node lands in the TAV
                // cache (§4.2.2).
                let mut len = 0u32;
                let mut cur = head;
                while let Some(r) = cur {
                    let tx = self.tavs.tx_of(r);
                    cur = self.tavs.next_in_page(r);
                    let _ = self.tav_cache.touch((frame, tx));
                    len += 1;
                }
                cost.memory_accesses += 1 + len + u32::from(evicted_dirty);
                self.stats.tav_walk_nodes += u64::from(len);
            }
        }

        let potential = match kind {
            AccessKind::Read => wsum.get(idx),
            AccessKind::Write => wsum.get(idx) || rsum.get(idx),
        };

        if kind == AccessKind::Read && rsum.get(idx) {
            // Exclusive permission is denied while another transaction has
            // an overflowed read of the block. The summary bit proves *some*
            // transaction read it; only a transactional requester needs the
            // walk to rule out its own node.
            outcome.deny_exclusive = match requester {
                None => true,
                Some(me) => self
                    .tavs
                    .page_iter(head)
                    .any(|r| self.tavs.read_vec(r).get(idx) && self.tavs.tx_of(r) != me),
            };
        }

        if !potential {
            // O(1) early exit: the summary vectors prove no overflowed
            // access can conflict with this one.
            self.stats.conflict_checks_fast += 1;
        } else {
            self.stats.conflict_checks_slow += 1;
            // Summary says "maybe": consult the per-transaction vectors.
            let word_in_page = idx.0 as usize * (BLOCK_SIZE / WORD_SIZE) + word.0 as usize;
            let mut cur = head;
            while let Some(r) = cur {
                let tx = self.tavs.tx_of(r);
                cur = self.tavs.next_in_page(r);
                if Some(tx) == requester {
                    continue;
                }
                let hit = match (kind, self.cfg.granularity.word_in_memory()) {
                    (AccessKind::Read, false) => self.tavs.write_vec(r).get(idx),
                    (AccessKind::Read, true) => self.tavs.write_words(r).get(word_in_page),
                    (AccessKind::Write, false) => {
                        let v = self.tavs.write_vec(r) | self.tavs.read_vec(r);
                        v.get(idx)
                    }
                    (AccessKind::Write, true) => {
                        self.tavs.write_words(r).get(word_in_page)
                            || self.tavs.read_words(r).get(word_in_page)
                    }
                };
                if hit {
                    outcome.conflicts.push(tx);
                }
                cost.lookups += 1;
                match self.tav_cache.touch((frame, tx)) {
                    crate::vts::Touch::Hit => self.stats.tav_cache_hits += 1,
                    crate::vts::Touch::Miss { evicted_dirty } => {
                        self.stats.tav_cache_misses += 1;
                        self.stats.tav_walk_nodes += 1;
                        cost.memory_accesses += 1 + u32::from(evicted_dirty);
                    }
                }
            }
            outcome.conflicts.sort();
            outcome.conflicts.dedup();
            self.stats.overflow_conflicts += outcome.conflicts.len() as u64;
        }

        outcome.done_at = cost.charge(now, self.cfg.vts_lookup_latency, bus);
        outcome
    }

    // ------------------------------------------------------------------
    // Overflow (§3.2, §4.4.3)
    // ------------------------------------------------------------------

    /// Handles the eviction of a transactional cache line.
    ///
    /// `spec` carries the speculative data when the line was dirty. Returns
    /// the cycle the (background) overflow processing finishes, or
    /// [`Exhaustion`] — *before any state is mutated* — when the operation
    /// would need a shadow page with the frame pool empty, or a TAV node
    /// with the arena at capacity. A failed call is side-effect free and may
    /// be retried once the caller frees resources (by aborting a
    /// transaction).
    ///
    /// `in_cache_cowriter` reports whether another live transaction still
    /// holds a word-disjoint write copy of this block in some cache (only
    /// possible in the word-granularity configurations) — it forces the
    /// merge path so the shared speculative page never loses that
    /// transaction's view.
    #[allow(clippy::too_many_arguments)]
    pub fn on_tx_eviction(
        &mut self,
        meta: &TxLineMeta,
        block: PhysBlock,
        spec: Option<&SpecBlock>,
        in_cache_cowriter: bool,
        mem: &mut PhysicalMemory,
        now: Cycle,
        bus: &mut SystemBus,
    ) -> Result<Cycle, Exhaustion> {
        let frame = block.frame();
        let idx = block.index();
        let tx = meta.tx;
        debug_assert!(
            self.spt.entry(frame).is_some(),
            "eviction from unregistered page {frame}"
        );

        // Exhaustion pre-checks, before any caches, stats or structures are
        // touched, so an `Err` leaves the system exactly as it was.
        {
            let entry = self.spt.entry(frame).expect("registered page");
            if self.tavs.find_in_page_list(entry.tav_head, tx).is_none() && self.tavs.at_capacity()
            {
                self.stats.tav_exhaustions += 1;
                return Err(Exhaustion::TavNodes);
            }
            if meta.write && entry.shadow.is_none() && mem.free_frames() == 0 {
                self.stats.frame_exhaustions += 1;
                return Err(Exhaustion::Frames);
            }
        }

        // The eviction's coherence message reaches the VTS.
        let mut done = bus.onchip_transfer(now);
        let mut cost = VtsCost {
            lookups: 2,
            ..Default::default()
        };
        match self.spt_cache.touch(frame) {
            crate::vts::Touch::Hit => self.stats.spt_cache_hits += 1,
            crate::vts::Touch::Miss { evicted_dirty } => {
                self.stats.spt_cache_misses += 1;
                cost.memory_accesses += 1 + u32::from(evicted_dirty);
            }
        }
        match self.tav_cache.touch((frame, tx)) {
            crate::vts::Touch::Hit => self.stats.tav_cache_hits += 1,
            crate::vts::Touch::Miss { evicted_dirty } => {
                self.stats.tav_cache_misses += 1;
                cost.memory_accesses += 1 + u32::from(evicted_dirty);
            }
        }
        self.tav_cache.mark_dirty(&(frame, tx));

        // Pre-update write summary (Copy-PTM needs to know whether this is
        // the block's first dirty overflow), and the pre-update *word*
        // summary (word-mode Copy-PTM backs words up individually).
        let head = self.spt.entry(frame).expect("registered page").tav_head;
        let wsum_before = self.spt.sum_write(frame);
        let word_sum_before = self.tavs.word_write_summary(head);

        // Find or create the (tx, page) TAV node.
        let node_ref = match self.tavs.find_in_page_list(head, tx) {
            Some(r) => r,
            None => {
                let r = self.tavs.alloc(tx, frame);
                // Link at the head of the horizontal (page) list...
                self.tavs.set_next_in_page(r, head);
                self.spt.entry_mut(frame).expect("registered page").tav_head = Some(r);
                // ...and of the vertical (transaction) list.
                let tx_head = self.tstate.entry_mut(tx).tav_head;
                self.tavs.set_next_in_tx(r, tx_head);
                self.tstate.entry_mut(tx).tav_head = Some(r);
                r
            }
        };

        if meta.read {
            // Word vectors are recorded regardless of the conflict
            // granularity: conflict *checks* ignore them in `wd:cache`, but
            // word-selective data movement (merge commits, view selection)
            // always needs them.
            self.tavs.record_read(node_ref, idx, Some(meta.read_words));
            self.spt.mark_sum_read(frame, idx);
        }

        if meta.write {
            let spec = spec.expect("dirty eviction must carry speculative data");
            let first_dirty_overflow = !wsum_before.get(idx);
            self.tavs
                .record_write(node_ref, idx, Some(meta.write_words));
            self.spt.mark_sum_write(frame, idx);
            self.ensure_shadow(frame, mem);
            let entry = self.spt.entry(frame).expect("registered page");
            let home_block = block;
            let shadow_block = block.on_frame(entry.shadow.expect("just ensured"));

            match self.cfg.policy {
                PtmPolicy::Copy => {
                    let contested = self.cfg.granularity.word_in_cache()
                        && (in_cache_cowriter
                            || self.other_writers(frame, idx, tx)
                            || self.is_contested(block));
                    if contested {
                        self.mark_contested(block);
                        // Word-granular Copy-PTM: the per-block backup goes
                        // stale once a co-writer commits into the home page,
                        // so each word is backed up individually the first
                        // time any live transaction's overflow claims it.
                        let base = idx.0 as usize * (BLOCK_SIZE / WORD_SIZE);
                        let mut fresh = WordMask::EMPTY;
                        for w in spec.written.iter() {
                            if !word_sum_before.get(base + w.0 as usize) {
                                fresh.set(w);
                            }
                        }
                        if !fresh.is_empty() {
                            restore_words(mem, home_block, shadow_block, fresh);
                            self.stats.backup_copies += 1;
                            cost.memory_accesses += 2;
                        }
                        let mut target = mem.read_block(home_block);
                        ptm_mem::versions::apply_written_words(&mut target, spec);
                        mem.write_block(home_block, &target);
                    } else {
                        // Back up the committed block once, then write the
                        // speculative data to the home page (§3.2.1).
                        if first_dirty_overflow {
                            mem.copy_block(home_block, shadow_block);
                            self.stats.backup_copies += 1;
                            cost.memory_accesses += 2;
                        }
                        mem.write_block(home_block, &spec.data);
                    }
                    cost.memory_accesses += 1;
                }
                PtmPolicy::Select => {
                    let contested = self.cfg.granularity.word_in_cache()
                        && (in_cache_cowriter
                            || self.other_writers(frame, idx, tx)
                            || self.is_contested(block));
                    if contested {
                        self.mark_contested(block);
                    }
                    let entry = self.spt.entry(frame).expect("registered page");
                    let spec_block = block.on_frame(entry.speculative_frame(idx));
                    if contested {
                        // A second writer exists (or ever existed): write
                        // only the words this transaction owns — a byte-
                        // enabled partial write in hardware. The commit for
                        // contested blocks *merges* instead of toggling.
                        let mut target = mem.read_block(spec_block);
                        ptm_mem::versions::apply_written_words(&mut target, spec);
                        mem.write_block(spec_block, &target);
                    } else {
                        // Sole writer ever: the buffer is a consistent
                        // whole-block snapshot and doubles as the page's
                        // valid image, keeping the zero-copy toggle commit.
                        mem.write_block(spec_block, &spec.data);
                    }
                    cost.memory_accesses += 1;
                }
            }
            self.stats.dirty_overflows += 1;
        } else {
            self.stats.clean_overflows += 1;
        }

        self.stats.peak_tav_nodes = self.stats.peak_tav_nodes.max(self.tavs.peak() as u64);
        done = cost.charge(done, self.cfg.vts_lookup_latency, bus);
        Ok(done)
    }

    fn ensure_shadow(&mut self, frame: FrameId, mem: &mut PhysicalMemory) {
        let entry = self.spt.entry_mut(frame).expect("registered page");
        if entry.shadow.is_none() {
            // `on_tx_eviction` pre-checked the pool, so this cannot fail.
            let shadow = mem
                .alloc()
                .expect("shadow allocation despite free-frame pre-check");
            entry.shadow = Some(shadow);
            self.stats.shadow_allocs += 1;
            self.live_shadows += 1;
            self.stats.peak_shadow_pages = self.stats.peak_shadow_pages.max(self.live_shadows);
        }
    }

    // ------------------------------------------------------------------
    // Fetch path (§4.4.1, Figure 3)
    // ------------------------------------------------------------------

    /// The frame a cache miss should fetch `block` from: XOR of the write
    /// summary bit and the selection bit picks home vs shadow (Figure 3).
    /// Copy-PTM always fetches from the home page.
    pub fn fetch_frame(&self, block: PhysBlock) -> FrameId {
        let frame = block.frame();
        let idx = block.index();
        let Some(entry) = self.spt.entry(frame) else {
            return frame;
        };
        match (self.cfg.policy, entry.shadow) {
            (PtmPolicy::Copy, _) | (_, None) => frame,
            (PtmPolicy::Select, Some(shadow)) => {
                if self.spt.sum_write(frame).get(idx) ^ entry.sel.get(idx) {
                    shadow
                } else {
                    frame
                }
            }
        }
    }

    /// The frame holding the *committed* version of `block`.
    pub fn committed_frame(&self, block: PhysBlock) -> FrameId {
        let frame = block.frame();
        let idx = block.index();
        let Some(entry) = self.spt.entry(frame) else {
            return frame;
        };
        match self.cfg.policy {
            PtmPolicy::Select => entry.committed_frame(idx),
            PtmPolicy::Copy => {
                // If a live transaction's speculative data occupies the home
                // block, the committed version is the shadow backup.
                match entry.shadow {
                    Some(shadow) if self.spt.sum_write(frame).get(idx) => shadow,
                    _ => frame,
                }
            }
        }
    }

    /// [`Self::committed_frame`] for a swapped-out page: the swap slot whose
    /// image holds the *committed* version of block `idx`, given the home
    /// image's slot. A Select page's set selection bit redirects the block
    /// to the shadow image; a Copy page whose home block carries a live
    /// writer's speculative data keeps the committed version in the backup.
    pub fn committed_swap_slot(&self, slot: SwapSlot, idx: BlockIdx) -> SwapSlot {
        let Some(entry) = self.sit.entry(slot) else {
            return slot;
        };
        let Some(shadow_slot) = entry.shadow_slot else {
            return slot;
        };
        let in_shadow = match self.cfg.policy {
            PtmPolicy::Select => entry.sel.get(idx),
            PtmPolicy::Copy => entry.sum_write.get(idx),
        };
        if in_shadow {
            shadow_slot
        } else {
            slot
        }
    }

    /// The frame transaction `tx` should read `word` of `block` from: its
    /// own overflowed speculative version when it has one, otherwise the
    /// committed version.
    pub fn tx_view_frame(&self, tx: TxId, block: PhysBlock, word: WordIdx) -> FrameId {
        let frame = block.frame();
        let idx = block.index();
        let Some(entry) = self.spt.entry(frame) else {
            return frame;
        };
        let Some(node_ref) = self.tavs.find_in_page_list(entry.tav_head, tx) else {
            return self.committed_frame(block);
        };
        let wrote = if self.cfg.granularity.word_in_cache() {
            // Word modes: the speculative page only holds the words this
            // transaction wrote; everything else reads the committed page.
            let word_in_page = idx.0 as usize * (BLOCK_SIZE / WORD_SIZE) + word.0 as usize;
            self.tavs.write_words(node_ref).get(word_in_page)
        } else {
            self.tavs.write_vec(node_ref).get(idx)
        };
        if !wrote {
            return self.committed_frame(block);
        }
        match self.cfg.policy {
            PtmPolicy::Copy => frame, // speculative data lives in the home page
            PtmPolicy::Select => entry.speculative_frame(idx),
        }
    }

    /// Whether `tx` has an overflowed dirty version of `block`.
    pub fn tx_wrote_overflowed(&self, tx: TxId, block: PhysBlock) -> bool {
        let Some(entry) = self.spt.entry(block.frame()) else {
            return false;
        };
        self.tavs
            .find_in_page_list(entry.tav_head, tx)
            .map(|r| self.tavs.write_vec(r).get(block.index()))
            .unwrap_or(false)
    }

    /// Marks a block *contested*: a second writer (transactional or not)
    /// touched it while another writer's transactional state was live. The
    /// word-granularity configurations downgrade contested blocks from the
    /// whole-block / selection-toggle fast path to word-masked merging.
    pub fn mark_contested(&mut self, block: PhysBlock) {
        if let Some(entry) = self.spt.entry_mut(block.frame()) {
            entry.contested.set(block.index());
        }
    }

    /// Whether `block` has ever been contested.
    pub fn is_contested(&self, block: PhysBlock) -> bool {
        self.spt
            .entry(block.frame())
            .map(|e| e.contested.get(block.index()))
            .unwrap_or(false)
    }

    /// Whether any transaction has overflowed state (read or write) for
    /// this specific block — the per-block *overflow bit* the directory
    /// variant keeps (§4.6). The simulator uses it to filter which cache
    /// hits need a VTS consultation in the word-granularity configurations;
    /// it is a pure state query with no timing cost, like the hardware bit.
    pub fn block_overflowed(&self, block: PhysBlock, exclude: Option<TxId>) -> bool {
        let Some(entry) = self.spt.entry(block.frame()) else {
            return false;
        };
        let idx = block.index();
        if !self.spt.summary_hit(block.frame(), idx) {
            return false;
        }
        self.tavs.page_iter(entry.tav_head).any(|r| {
            Some(self.tavs.tx_of(r)) != exclude
                && (self.tavs.write_vec(r) | self.tavs.read_vec(r)).get(idx)
        })
    }

    /// Every transaction with an overflowed dirty version of `block`.
    ///
    /// Used by the `wd:cache` configuration's eviction rule: the overflow
    /// structures track only one writer per block, so evicting a block that
    /// a *different* transaction already write-overflowed forces an abort
    /// (§6.3).
    pub fn overflow_writers(&self, block: PhysBlock) -> impl Iterator<Item = TxId> + '_ {
        let idx = block.index();
        // The write-summary pre-filter: when the page has no dirty overflow
        // of this block at all, the walk never starts.
        let head = if self.spt.sum_write(block.frame()).get(idx) {
            self.spt.entry(block.frame()).and_then(|e| e.tav_head)
        } else {
            None
        };
        self.tavs
            .page_iter(head)
            .filter(move |r| self.tavs.write_vec(*r).get(idx))
            .map(|r| self.tavs.tx_of(r))
    }

    /// Where committed-side word writes must be *mirrored* in the
    /// word-granularity configurations.
    ///
    /// When another live transaction holds an overflowed speculative version
    /// of `block` (word-disjoint by conflict detection), its speculative
    /// page must observe words committed by others — otherwise its eventual
    /// commit (Select's selection toggle, or Copy's home page becoming
    /// committed) would resurrect stale values. Returns the speculative
    /// location to mirror into, or `None` when no mirroring is needed
    /// (block granularity forbids co-writers outright).
    pub fn mirror_location(&self, block: PhysBlock, exclude: Option<TxId>) -> Option<PhysBlock> {
        if !self.cfg.granularity.word_in_cache() {
            return None;
        }
        let entry = self.spt.entry(block.frame())?;
        entry.shadow?;
        let has_other_writer = self
            .overflow_writers(block)
            .into_iter()
            .any(|w| Some(w) != exclude && self.is_live(w));
        if !has_other_writer {
            return None;
        }
        let target = match self.cfg.policy {
            PtmPolicy::Select => entry.speculative_frame(block.index()),
            PtmPolicy::Copy => block.frame(),
        };
        Some(block.on_frame(target))
    }

    // ------------------------------------------------------------------
    // Commit / abort (§3.4, §4.5)
    // ------------------------------------------------------------------

    /// Commits `tx`: logical commit is immediate; TAV cleanup (selection
    /// vector toggling for Select-PTM, node freeing) is charged lazily and
    /// installs per-page stall windows. Returns the cleanup-complete cycle.
    pub fn commit(
        &mut self,
        tx: TxId,
        mem: &mut PhysicalMemory,
        swap: &mut SwapStore,
        now: Cycle,
        bus: &mut SystemBus,
    ) -> Cycle {
        self.tstate.set_status(tx, TxStatus::Committing);
        let head = self.tstate.entry(tx).tav_head;
        let mut t = now;

        self.stats.tx_dirty_page_sum += self
            .tavs
            .tx_iter(head)
            .filter(|r| !self.tavs.write_vec(*r).is_empty())
            .count() as u64;

        // Cursor walk: read each node's vertical link before its page-side
        // unlink frees it.
        let mut cur = head;
        while let Some(r) = cur {
            let frame = self.tavs.page_of(r);
            let write_vec = self.tavs.write_vec(r);
            cur = self.tavs.next_in_tx(r);
            let mut cost = VtsCost {
                lookups: 2,
                ..Default::default()
            };
            match self.tav_cache.touch((frame, tx)) {
                crate::vts::Touch::Hit => self.stats.tav_cache_hits += 1,
                crate::vts::Touch::Miss { evicted_dirty } => {
                    self.stats.tav_cache_misses += 1;
                    cost.memory_accesses += 1 + u32::from(evicted_dirty);
                }
            }

            if let Some(slot) = sentinel_slot(frame) {
                // The page was swapped out while this transaction still had
                // overflowed state on it. Complete the commit against the
                // SIT entry and the swap images in place (§3.5.1) — no
                // swap-in, and therefore no frame allocation, is needed.
                if self.cfg.policy == PtmPolicy::Select {
                    for idx in write_vec.iter() {
                        let entry = self.sit.entry(slot).expect("SIT entry for swapped page");
                        if self.cfg.granularity.word_in_cache() && entry.contested.get(idx) {
                            self.merge_written_words_swapped(r, slot, idx, swap);
                            self.stats.word_merge_copies += 1;
                            cost.memory_accesses += 2;
                        } else {
                            let entry = self
                                .sit
                                .entry_mut(slot)
                                .expect("SIT entry for swapped page");
                            entry.sel.toggle(idx);
                            self.stats.selection_toggles += 1;
                        }
                    }
                }
                self.unlink_and_free_swapped(r, slot, tx);
                t = cost.charge(t, self.cfg.vts_lookup_latency, bus);
                self.maybe_free_shadow_swapped(slot, swap);
                continue;
            }

            if self.cfg.policy == PtmPolicy::Select {
                for idx in write_vec.iter() {
                    if self.cfg.granularity.word_in_cache()
                        && self.is_contested(PhysBlock::new(frame, idx))
                    {
                        // Contested block: the per-block selection bit
                        // cannot represent word-disjoint ownership, so the
                        // commit merges this transaction's words into the
                        // committed page (the cost word granularity pays on
                        // co-written overflowed blocks).
                        self.merge_written_words(r, frame, idx, mem);
                        self.stats.word_merge_copies += 1;
                        cost.memory_accesses += 2;
                    } else {
                        let entry = self.spt.entry_mut(frame).expect("page present");
                        entry.sel.toggle(idx);
                        self.stats.selection_toggles += 1;
                    }
                }
                self.spt_cache.mark_dirty(&frame);
            }

            self.unlink_and_free(r, frame, tx);
            t = cost.charge(t, self.cfg.vts_lookup_latency, bus);
            self.cleanup_pages.insert(frame, t);
            self.maybe_free_shadow(frame, mem);
        }

        self.tstate.entry_mut(tx).tav_head = None;
        self.tstate.set_status(tx, TxStatus::Committed);
        self.stats.commits += 1;
        t
    }

    /// Aborts `tx`: Select-PTM only frees TAV nodes (selection bits already
    /// point at the committed data); Copy-PTM must restore every overwritten
    /// home block from its shadow backup. Returns the cleanup-complete cycle.
    pub fn abort(
        &mut self,
        tx: TxId,
        mem: &mut PhysicalMemory,
        swap: &mut SwapStore,
        now: Cycle,
        bus: &mut SystemBus,
    ) -> Cycle {
        self.tstate.set_status(tx, TxStatus::Aborting);
        let mut cur = self.tstate.entry(tx).tav_head;
        let mut t = now;

        while let Some(r) = cur {
            let frame = self.tavs.page_of(r);
            let write_vec = self.tavs.write_vec(r);
            cur = self.tavs.next_in_tx(r);
            let mut cost = VtsCost {
                lookups: 2,
                ..Default::default()
            };
            match self.tav_cache.touch((frame, tx)) {
                crate::vts::Touch::Hit => self.stats.tav_cache_hits += 1,
                crate::vts::Touch::Miss { evicted_dirty } => {
                    self.stats.tav_cache_misses += 1;
                    cost.memory_accesses += 1 + u32::from(evicted_dirty);
                }
            }

            if let Some(slot) = sentinel_slot(frame) {
                // Aborting a transaction whose page is swapped out: Copy-PTM
                // restores the overwritten blocks of the swapped home image
                // from the swapped shadow backup; Select-PTM needs no data
                // movement (selection bits were never toggled). Either way
                // the node is unlinked from the SIT entry in place.
                if self.cfg.policy == PtmPolicy::Copy && !write_vec.is_empty() {
                    let shadow_slot = self
                        .sit
                        .entry(slot)
                        .expect("SIT entry for swapped page")
                        .shadow_slot
                        .expect("dirty overflow implies a shadow page");
                    let mut home_img = swap.peek(slot);
                    let shadow_img = swap.peek(shadow_slot);
                    for idx in write_vec.iter() {
                        if self.cfg.granularity.word_in_cache() {
                            let mask = self.tavs.write_words(r).block_words(idx);
                            copy_image_words(&shadow_img, &mut home_img, idx, mask);
                        } else {
                            copy_image_block(&shadow_img, &mut home_img, idx);
                        }
                        self.stats.restore_copies += 1;
                        cost.memory_accesses += 2;
                    }
                    swap.update(slot, home_img);
                }
                self.unlink_and_free_swapped(r, slot, tx);
                t = cost.charge(t, self.cfg.vts_lookup_latency, bus);
                self.maybe_free_shadow_swapped(slot, swap);
                continue;
            }

            if self.cfg.policy == PtmPolicy::Copy {
                let entry = self.spt.entry(frame).expect("page present");
                let shadow = entry.shadow;
                for idx in write_vec.iter() {
                    let shadow = shadow.expect("dirty overflow implies a shadow page");
                    let home_block = PhysBlock::new(frame, idx);
                    let shadow_block = home_block.on_frame(shadow);
                    if self.cfg.granularity.word_in_cache() {
                        // Home holds word-masked speculative writes: restore
                        // exactly those words from the backup.
                        let mask = self.tavs.write_words(r).block_words(idx);
                        restore_words(mem, shadow_block, home_block, mask);
                    } else {
                        mem.copy_block(shadow_block, home_block);
                    }
                    self.stats.restore_copies += 1;
                    cost.memory_accesses += 2;
                }
            }
            // Select-PTM aborts need no data movement at any granularity:
            // block mode never toggled, and word mode commits merge only a
            // live transaction's own words, so dead speculative words in
            // the page are simply never read again.

            self.unlink_and_free(r, frame, tx);
            t = cost.charge(t, self.cfg.vts_lookup_latency, bus);
            self.cleanup_pages.insert(frame, t);
            self.maybe_free_shadow(frame, mem);
        }

        self.tstate.entry_mut(tx).tav_head = None;
        self.tstate.set_status(tx, TxStatus::Aborted);
        self.stats.aborts += 1;
        t
    }

    fn other_writers(&self, frame: FrameId, idx: BlockIdx, tx: TxId) -> bool {
        if !self.spt.sum_write(frame).get(idx) {
            return false;
        }
        let entry = self.spt.entry(frame).expect("page present");
        self.tavs
            .page_iter(entry.tav_head)
            .any(|r| self.tavs.tx_of(r) != tx && self.tavs.write_vec(r).get(idx))
    }

    fn merge_written_words(
        &mut self,
        node: TavRef,
        frame: FrameId,
        idx: BlockIdx,
        mem: &mut PhysicalMemory,
    ) {
        let mask = self.tavs.write_words(node).block_words(idx);
        let entry = self.spt.entry(frame).expect("page present");
        let spec = PhysBlock::new(frame, idx).on_frame(entry.speculative_frame(idx));
        let committed = PhysBlock::new(frame, idx).on_frame(entry.committed_frame(idx));
        restore_words(mem, spec, committed, mask);
    }

    fn unlink_and_free(&mut self, r: TavRef, frame: FrameId, tx: TxId) {
        let head = self.spt.entry(frame).expect("page present").tav_head;
        let new_head = self.tavs.unlink_from_page_list(head, r);
        self.tavs.free(r);
        // Summaries shrink on unlink, so rebuild them from the survivors —
        // the only remaining full walk on the commit/abort path.
        let (sum_read, sum_write) = self.tavs.block_summaries(new_head);
        self.spt.entry_mut(frame).expect("page present").tav_head = new_head;
        self.spt.set_summaries(frame, sum_read, sum_write);
        self.tav_cache.remove(&(frame, tx));
    }

    /// `unlink_and_free` for a node whose page is swapped out: the list
    /// anchor and summary vectors live in the SIT entry instead of the SPT.
    fn unlink_and_free_swapped(&mut self, r: TavRef, slot: SwapSlot, tx: TxId) {
        let head = self
            .sit
            .entry(slot)
            .expect("SIT entry for swapped page")
            .tav_head;
        let new_head = self.tavs.unlink_from_page_list(head, r);
        self.tavs.free(r);
        let (sum_read, sum_write) = self.tavs.block_summaries(new_head);
        let entry = self
            .sit
            .entry_mut(slot)
            .expect("SIT entry for swapped page");
        entry.tav_head = new_head;
        entry.sum_read = sum_read;
        entry.sum_write = sum_write;
        self.tav_cache.remove(&(swap_sentinel(slot), tx));
    }

    /// `merge_written_words` against swap images: the committed copy of a
    /// contested block lives in whichever swapped image the selection bit
    /// points at; merge this transaction's written words into it in place.
    fn merge_written_words_swapped(
        &mut self,
        node: TavRef,
        slot: SwapSlot,
        idx: BlockIdx,
        swap: &mut SwapStore,
    ) {
        let mask = self.tavs.write_words(node).block_words(idx);
        let entry = self.sit.entry(slot).expect("SIT entry for swapped page");
        let shadow_slot = entry
            .shadow_slot
            .expect("contested overflow implies a shadow page");
        // Committed block in the shadow iff the selection bit is set; the
        // speculative copy is on the opposite page.
        let (spec_slot, committed_slot) = if entry.sel.get(idx) {
            (slot, shadow_slot)
        } else {
            (shadow_slot, slot)
        };
        let spec_img = swap.peek(spec_slot);
        let mut committed_img = swap.peek(committed_slot);
        copy_image_words(&spec_img, &mut committed_img, idx, mask);
        swap.update(committed_slot, committed_img);
    }

    /// [`Self::maybe_free_shadow`] for a swapped-out page: once no TAV node
    /// references the page, fold any committed shadow blocks into the home
    /// image (Select-PTM) and discard the shadow's swap slot.
    fn maybe_free_shadow_swapped(&mut self, slot: SwapSlot, swap: &mut SwapStore) {
        let entry = self.sit.entry(slot).expect("SIT entry for swapped page");
        if entry.tav_head.is_some() {
            return;
        }
        let Some(shadow_slot) = entry.shadow_slot else {
            return;
        };
        if self.cfg.policy == PtmPolicy::Select && !entry.sel.is_empty() {
            // Merge-on-free, the swapped analogue of merge-on-swap: bring
            // the committed blocks home so the shadow image can go.
            let shadow_img = swap.peek(shadow_slot);
            let mut home_img = swap.peek(slot);
            let sel: Vec<BlockIdx> = entry.sel.iter().collect();
            for idx in sel {
                copy_image_block(&shadow_img, &mut home_img, idx);
            }
            swap.update(slot, home_img);
        }
        swap.discard(shadow_slot);
        let entry = self
            .sit
            .entry_mut(slot)
            .expect("SIT entry for swapped page");
        entry.shadow_slot = None;
        entry.sel = ptm_types::BlockVec::EMPTY;
        self.stats.shadow_frees += 1;
    }

    /// Frees a page's shadow when it no longer holds any needed data: for
    /// Copy-PTM, as soon as no transaction uses the page; for Select-PTM,
    /// additionally the selection vector must be clear (no committed block
    /// lives in the shadow).
    fn maybe_free_shadow(&mut self, frame: FrameId, mem: &mut PhysicalMemory) {
        let entry = self.spt.entry(frame).expect("page present");
        if entry.tav_head.is_some() || entry.shadow.is_none() {
            return;
        }
        let can_free = match self.cfg.policy {
            PtmPolicy::Copy => true,
            PtmPolicy::Select => entry.sel.is_empty(),
        };
        if can_free {
            let entry = self.spt.entry_mut(frame).expect("page present");
            let shadow = entry.shadow.take().expect("checked above");
            mem.free(shadow);
            self.stats.shadow_frees += 1;
            self.live_shadows -= 1;
        }
    }

    fn prune_cleanup(&mut self, now: Cycle) {
        // Hot-path guard: the map is empty for the vast majority of checks,
        // and `retain` on a HashMap still walks every bucket.
        if !self.cleanup_pages.is_empty() {
            self.cleanup_pages.retain(|_, t| *t > now);
        }
    }

    // ------------------------------------------------------------------
    // Paging (§3.5.1) and shadow freeing (§3.5.2)
    // ------------------------------------------------------------------

    /// Swaps a home page out: merges (Select-PTM, merge-on-swap, unused
    /// shadow) or co-swaps the shadow, stores both pages' data, and migrates
    /// the SPT entry into the SIT. The caller updates the page table with
    /// the returned slot and must not pick shadow pages as swap victims.
    pub fn on_swap_out(
        &mut self,
        frame: FrameId,
        mem: &mut PhysicalMemory,
        swap: &mut SwapStore,
    ) -> SwapOut {
        let mut entry = self
            .spt
            .remove(frame)
            .unwrap_or_else(|| panic!("swapping unregistered page {frame}"));
        let transactional = entry.tav_head.is_some() || entry.shadow.is_some();

        // Merge-on-swap: fold committed shadow blocks into the home image
        // and free the shadow before it ever reaches the swap file.
        if self.cfg.policy == PtmPolicy::Select && entry.tav_head.is_none() {
            if let Some(shadow) = entry.shadow.take() {
                for idx in entry.sel.iter().collect::<Vec<_>>() {
                    let home_block = PhysBlock::new(frame, idx);
                    mem.copy_block(home_block.on_frame(shadow), home_block);
                }
                entry.sel = ptm_types::BlockVec::EMPTY;
                mem.free(shadow);
                self.stats.shadow_frees += 1;
                self.live_shadows -= 1;
            }
        }
        if self.cfg.policy == PtmPolicy::Copy && entry.tav_head.is_none() {
            if let Some(shadow) = entry.shadow.take() {
                mem.free(shadow);
                self.stats.shadow_frees += 1;
                self.live_shadows -= 1;
            }
        }

        let home_slot = swap.store(mem.read_frame(frame));
        mem.free(frame);
        let shadow_slot = entry.shadow.map(|shadow| {
            let slot = swap.store(mem.read_frame(shadow));
            mem.free(shadow);
            self.live_shadows -= 1;
            slot
        });

        // Repoint the page's TAV nodes at the swap sentinel: a node must
        // never keep referencing the freed frame (which the allocator may
        // hand to an unrelated page), and the sentinel encodes the swap slot
        // so commit/abort can clean up against the SIT while the page is
        // out (§3.5.1).
        self.tavs
            .repoint_page_list(entry.tav_head, swap_sentinel(home_slot));
        self.sit
            .insert(SitEntry::from_spt(&entry, home_slot, shadow_slot));
        self.spt_cache.remove(&frame);
        self.tav_cache.remove_matching(|(f, _)| *f == frame);
        if transactional {
            self.stats.tx_swap_outs += 1;
        }
        SwapOut { home_slot }
    }

    /// Swaps a page back in: allocates fresh frames for home (and shadow),
    /// reloads their data, migrates the SIT entry back to the SPT under the
    /// new frame number, and repoints the page's TAV nodes. Returns the new
    /// home frame, or [`Exhaustion::Frames`] — with the SIT entry left in
    /// place, so the fault may simply be retried — when the pool cannot
    /// cover the home frame plus its co-swapped shadow.
    pub fn on_swap_in(
        &mut self,
        home_slot: SwapSlot,
        mem: &mut PhysicalMemory,
        swap: &mut SwapStore,
    ) -> Result<FrameId, Exhaustion> {
        // Pre-check the whole burst before removing the SIT entry: a failed
        // swap-in must be idempotent.
        let needed = {
            let entry = self
                .sit
                .entry(home_slot)
                .unwrap_or_else(|| panic!("no SIT entry for {home_slot}"));
            1 + usize::from(entry.shadow_slot.is_some())
        };
        if mem.free_frames() < needed {
            self.stats.frame_exhaustions += 1;
            return Err(Exhaustion::Frames);
        }

        let sit_entry = self.sit.remove(home_slot).expect("entry checked above");
        let home = mem.alloc().expect("pre-checked free frames");
        mem.write_frame(home, &swap.load(home_slot));

        let shadow = sit_entry.shadow_slot.map(|slot| {
            let f = mem.alloc().expect("pre-checked free frames");
            mem.write_frame(f, &swap.load(slot));
            self.live_shadows += 1;
            f
        });

        // Repoint the page's TAV nodes at the new frame.
        self.tavs.repoint_page_list(sit_entry.tav_head, home);
        // Drop any sentinel-keyed TAV cache entries: the slot may be reused
        // by an unrelated page once its data is loaded.
        self.tav_cache
            .remove_matching(|(f, _)| *f == swap_sentinel(home_slot));

        self.spt.insert(SptEntry {
            home,
            shadow,
            sel: sit_entry.sel,
            contested: sit_entry.contested,
            tav_head: sit_entry.tav_head,
            sum_read: sit_entry.sum_read,
            sum_write: sit_entry.sum_write,
        });
        if sit_entry.tav_head.is_some() || shadow.is_some() {
            self.stats.tx_swap_ins += 1;
        }
        Ok(home)
    }

    /// Lazy shadow-page reclamation hook (§3.5.2): when a non-speculative
    /// dirty block is written back and its committed copy lives in the
    /// shadow, migrate it to the home page and toggle the selection bit —
    /// unless a live transaction's speculative data occupies the home slot.
    ///
    /// Returns `true` when a migration actually happened (page data moved
    /// and the selection bit flipped) so callers running under speculation
    /// know their frozen committed-frame lookups just went stale.
    pub fn on_nontx_dirty_writeback(&mut self, block: PhysBlock, mem: &mut PhysicalMemory) -> bool {
        if self.cfg.policy != PtmPolicy::Select
            || self.cfg.shadow_free != ShadowFreePolicy::LazyMigrate
        {
            return false;
        }
        let frame = block.frame();
        let idx = block.index();
        let Some(entry) = self.spt.entry(frame) else {
            return false;
        };
        let Some(shadow) = entry.shadow else {
            return false;
        };
        if !entry.sel.get(idx) {
            return false;
        }
        // The home slot currently holds (or may soon hold) speculative data
        // if any live transaction overflowed a write to this block.
        if self.spt.sum_write(frame).get(idx) {
            return false;
        }
        mem.copy_block(block.on_frame(shadow), block);
        let entry = self.spt.entry_mut(frame).expect("just looked up");
        entry.sel.clear(idx);
        self.stats.lazy_migrations += 1;
        self.spt_cache.mark_dirty(&frame);
        self.maybe_free_shadow(frame, mem);
        true
    }
}

/// The epoch executor in `crates/sim` shares a `&PtmSystem` across host
/// threads during its speculation phase: every `&self` lookup it performs
/// (`committed_frame`, `tx_view_frame`, `block_overflowed`, `mirror_location`,
/// TAV walks) reads plain owned data, so the system is [`Sync`] by
/// construction. This assertion keeps that seam from silently regressing if
/// interior mutability (e.g. a `Cell`-based stats cache) is ever added.
const _: fn() = || {
    fn assert_sync<T: Sync>() {}
    assert_sync::<PtmSystem>();
};

/// Copies the masked words of `src` onto `dst`.
/// Frame-number sentinel for swapped-out pages. TAV nodes of a swapped page
/// are repointed here so that (a) they can never alias a reallocated real
/// frame and (b) commit/abort can recover the page's swap slot from the
/// node alone, completing lazy cleanup without swapping the page back in.
/// Physical frame numbers are bounded by memory size (thousands); the
/// sentinel range grows downward from `u32::MAX`, so the two can never meet.
const SWAP_SENTINEL_BASE: u32 = u32::MAX;

pub(crate) fn swap_sentinel(slot: SwapSlot) -> FrameId {
    FrameId(SWAP_SENTINEL_BASE - slot.0)
}

pub(crate) fn sentinel_slot(frame: FrameId) -> Option<SwapSlot> {
    (frame.0 > SWAP_SENTINEL_BASE / 2).then(|| SwapSlot(SWAP_SENTINEL_BASE - frame.0))
}

/// Copies block `idx` from one swapped page image to another.
pub(crate) fn copy_image_block(
    src: &[u8; ptm_types::PAGE_SIZE],
    dst: &mut [u8; ptm_types::PAGE_SIZE],
    idx: BlockIdx,
) {
    let off = idx.0 as usize * BLOCK_SIZE;
    dst[off..off + BLOCK_SIZE].copy_from_slice(&src[off..off + BLOCK_SIZE]);
}

/// Copies the masked words of block `idx` between swapped page images.
pub(crate) fn copy_image_words(
    src: &[u8; ptm_types::PAGE_SIZE],
    dst: &mut [u8; ptm_types::PAGE_SIZE],
    idx: BlockIdx,
    mask: WordMask,
) {
    let base = idx.0 as usize * BLOCK_SIZE;
    for w in mask.iter() {
        let off = base + w.0 as usize * WORD_SIZE;
        dst[off..off + WORD_SIZE].copy_from_slice(&src[off..off + WORD_SIZE]);
    }
}

pub(crate) fn restore_words(
    mem: &mut PhysicalMemory,
    src: PhysBlock,
    dst: PhysBlock,
    mask: WordMask,
) {
    let from = mem.read_block(src);
    let mut to = mem.read_block(dst);
    for w in mask.iter() {
        let off = w.0 as usize * WORD_SIZE;
        to[off..off + WORD_SIZE].copy_from_slice(&from[off..off + WORD_SIZE]);
    }
    mem.write_block(dst, &to);
}
