//! The Shadow Page Table (SPT): one entry per resident physical page.
//!
//! An SPT entry (Figure 1) anchors everything PTM knows about a page: the
//! shadow-page pointer (valid only once a dirty overflow allocated one), the
//! Select-PTM selection vector, and the head of the page's horizontal TAV
//! list.

use crate::tav::TavRef;
use ptm_types::{BlockIdx, BlockVec, FrameId};
use std::collections::HashMap;

/// One Shadow Page Table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SptEntry {
    /// The home page this entry describes.
    pub home: FrameId,
    /// The shadow page, once allocated by a dirty overflow.
    pub shadow: Option<FrameId>,
    /// Selection vector: a set bit means the *committed* version of that
    /// block lives in the shadow page (Select-PTM only; Copy-PTM leaves it
    /// empty).
    pub sel: BlockVec,
    /// Word-granularity configurations: blocks that have *ever* had two
    /// writers (transactional or not) while transactional state was live.
    /// Contested blocks use word-masked data movement and merge commits;
    /// uncontested blocks keep the whole-block / selection-toggle fast path.
    /// Sticky by design — conservative and cheap.
    pub contested: BlockVec,
    /// Head of the page's horizontal TAV list.
    pub tav_head: Option<TavRef>,
}

impl SptEntry {
    fn new(home: FrameId) -> Self {
        SptEntry {
            home,
            shadow: None,
            sel: BlockVec::EMPTY,
            contested: BlockVec::EMPTY,
            tav_head: None,
        }
    }

    /// The frame currently holding the *committed* version of `block`.
    ///
    /// With no shadow page (or a clear selection bit) that is the home page;
    /// a set selection bit redirects to the shadow.
    pub fn committed_frame(&self, block: BlockIdx) -> FrameId {
        match self.shadow {
            Some(shadow) if self.sel.get(block) => shadow,
            _ => self.home,
        }
    }

    /// The frame that holds (or will hold) the *speculative* version of
    /// `block` — the opposite page from the committed one.
    ///
    /// # Panics
    ///
    /// Panics if no shadow page is allocated; speculative placement is only
    /// meaningful once a dirty overflow allocated one.
    pub fn speculative_frame(&self, block: BlockIdx) -> FrameId {
        let shadow = self.shadow.expect("speculative location needs a shadow page");
        if self.sel.get(block) {
            self.home
        } else {
            shadow
        }
    }
}

/// The Shadow Page Table, indexed by physical page number.
///
/// # Examples
///
/// ```
/// use ptm_core::spt::ShadowPageTable;
/// use ptm_types::{BlockIdx, FrameId};
///
/// let mut spt = ShadowPageTable::new();
/// spt.on_page_alloc(FrameId(3));
/// let e = spt.entry(FrameId(3)).unwrap();
/// assert_eq!(e.committed_frame(BlockIdx(0)), FrameId(3));
/// assert!(e.shadow.is_none());
/// ```
#[derive(Debug, Default)]
pub struct ShadowPageTable {
    entries: HashMap<FrameId, SptEntry>,
}

impl ShadowPageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a freshly allocated physical page ("when a page is
    /// allocated, its entry in the SPT is initialized and marked as valid").
    pub fn on_page_alloc(&mut self, home: FrameId) {
        self.entries.insert(home, SptEntry::new(home));
    }

    /// Removes a page's entry (frame freed or swapped out), returning it so
    /// paging can transfer it into the SIT.
    pub fn remove(&mut self, home: FrameId) -> Option<SptEntry> {
        self.entries.remove(&home)
    }

    /// Re-inserts an entry (swap-in migrates a SIT entry back here under the
    /// page's new frame).
    pub fn insert(&mut self, entry: SptEntry) {
        self.entries.insert(entry.home, entry);
    }

    /// Looks up the entry for a home page. Shadow pages themselves have no
    /// valid entry, as in the paper.
    pub fn entry(&self, home: FrameId) -> Option<&SptEntry> {
        self.entries.get(&home)
    }

    /// Mutable lookup.
    pub fn entry_mut(&mut self, home: FrameId) -> Option<&mut SptEntry> {
        self.entries.get_mut(&home)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &SptEntry> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_defaults_to_home() {
        let mut spt = ShadowPageTable::new();
        spt.on_page_alloc(FrameId(1));
        let e = spt.entry(FrameId(1)).unwrap();
        for b in BlockIdx::all() {
            assert_eq!(e.committed_frame(b), FrameId(1));
        }
    }

    #[test]
    fn selection_bit_redirects_committed_to_shadow() {
        let mut spt = ShadowPageTable::new();
        spt.on_page_alloc(FrameId(1));
        let e = spt.entry_mut(FrameId(1)).unwrap();
        e.shadow = Some(FrameId(9));
        e.sel.set(BlockIdx(4));
        assert_eq!(e.committed_frame(BlockIdx(4)), FrameId(9));
        assert_eq!(e.committed_frame(BlockIdx(5)), FrameId(1));
        // Speculative is always the other page.
        assert_eq!(e.speculative_frame(BlockIdx(4)), FrameId(1));
        assert_eq!(e.speculative_frame(BlockIdx(5)), FrameId(9));
    }

    #[test]
    fn selection_bit_without_shadow_still_reads_home() {
        // A stale selection bit with no shadow (e.g. Copy-PTM) must not
        // redirect anywhere.
        let mut e = SptEntry::new(FrameId(2));
        e.sel.set(BlockIdx(0));
        assert_eq!(e.committed_frame(BlockIdx(0)), FrameId(2));
    }

    #[test]
    #[should_panic(expected = "needs a shadow page")]
    fn speculative_without_shadow_panics() {
        let e = SptEntry::new(FrameId(2));
        let _ = e.speculative_frame(BlockIdx(0));
    }

    #[test]
    fn remove_and_reinsert_round_trips() {
        let mut spt = ShadowPageTable::new();
        spt.on_page_alloc(FrameId(7));
        spt.entry_mut(FrameId(7)).unwrap().sel.set(BlockIdx(1));
        let e = spt.remove(FrameId(7)).unwrap();
        assert!(spt.entry(FrameId(7)).is_none());
        spt.insert(e);
        assert!(spt.entry(FrameId(7)).unwrap().sel.get(BlockIdx(1)));
    }
}
