//! The Shadow Page Table (SPT): one entry per resident physical page.
//!
//! An SPT entry (Figure 1) anchors everything PTM knows about a page: the
//! shadow-page pointer (valid only once a dirty overflow allocated one), the
//! Select-PTM selection vector, the head of the page's horizontal TAV list,
//! and the page's conflict *summary* vectors — the running union of every
//! live transaction's read/write vectors for the page (§4.2.2), kept
//! incrementally so a conflict check can reject most accesses in O(1)
//! without walking the TAV list.
//!
//! The table itself is direct-indexed by frame number (a `Vec` of optional
//! entries), matching the hardware's "indexed by physical page number"
//! organization and avoiding hash lookups on the miss path.

use crate::tav::TavRef;
use ptm_types::{BlockIdx, BlockVec, FrameId};

/// One Shadow Page Table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SptEntry {
    /// The home page this entry describes.
    pub home: FrameId,
    /// The shadow page, once allocated by a dirty overflow.
    pub shadow: Option<FrameId>,
    /// Selection vector: a set bit means the *committed* version of that
    /// block lives in the shadow page (Select-PTM only; Copy-PTM leaves it
    /// empty).
    pub sel: BlockVec,
    /// Word-granularity configurations: blocks that have *ever* had two
    /// writers (transactional or not) while transactional state was live.
    /// Contested blocks use word-masked data movement and merge commits;
    /// uncontested blocks keep the whole-block / selection-toggle fast path.
    /// Sticky by design — conservative and cheap.
    pub contested: BlockVec,
    /// Head of the page's horizontal TAV list.
    pub tav_head: Option<TavRef>,
    /// Union of the read vectors of every node on the TAV list — the read
    /// summary vector. Maintained incrementally on overflow and rebuilt when
    /// a node is unlinked; always equals `TavArena::read_summary(tav_head)`.
    pub sum_read: BlockVec,
    /// Union of the write vectors of every node on the TAV list — the write
    /// summary vector; always equals `TavArena::write_summary(tav_head)`.
    pub sum_write: BlockVec,
}

impl SptEntry {
    fn new(home: FrameId) -> Self {
        SptEntry {
            home,
            shadow: None,
            sel: BlockVec::EMPTY,
            contested: BlockVec::EMPTY,
            tav_head: None,
            sum_read: BlockVec::EMPTY,
            sum_write: BlockVec::EMPTY,
        }
    }

    /// The frame currently holding the *committed* version of `block`.
    ///
    /// With no shadow page (or a clear selection bit) that is the home page;
    /// a set selection bit redirects to the shadow.
    pub fn committed_frame(&self, block: BlockIdx) -> FrameId {
        match self.shadow {
            Some(shadow) if self.sel.get(block) => shadow,
            _ => self.home,
        }
    }

    /// The frame that holds (or will hold) the *speculative* version of
    /// `block` — the opposite page from the committed one.
    ///
    /// # Panics
    ///
    /// Panics if no shadow page is allocated; speculative placement is only
    /// meaningful once a dirty overflow allocated one.
    pub fn speculative_frame(&self, block: BlockIdx) -> FrameId {
        let shadow = self
            .shadow
            .expect("speculative location needs a shadow page");
        if self.sel.get(block) {
            self.home
        } else {
            shadow
        }
    }

    /// Whether any live transaction overflowed *any* access (read or write)
    /// of `block` — the O(1) conflict pre-filter test.
    pub fn summary_hit(&self, block: BlockIdx) -> bool {
        self.sum_read.get(block) || self.sum_write.get(block)
    }
}

/// The Shadow Page Table, direct-indexed by physical page number.
///
/// # Examples
///
/// ```
/// use ptm_core::spt::ShadowPageTable;
/// use ptm_types::{BlockIdx, FrameId};
///
/// let mut spt = ShadowPageTable::new();
/// spt.on_page_alloc(FrameId(3));
/// let e = spt.entry(FrameId(3)).unwrap();
/// assert_eq!(e.committed_frame(BlockIdx(0)), FrameId(3));
/// assert!(e.shadow.is_none());
/// ```
#[derive(Debug, Default, Clone)]
pub struct ShadowPageTable {
    entries: Vec<Option<SptEntry>>,
    live: usize,
}

impl ShadowPageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    fn grow_to(&mut self, home: FrameId) -> usize {
        let idx = home.0 as usize;
        if idx >= self.entries.len() {
            self.entries.resize(idx + 1, None);
        }
        idx
    }

    /// Registers a freshly allocated physical page ("when a page is
    /// allocated, its entry in the SPT is initialized and marked as valid").
    pub fn on_page_alloc(&mut self, home: FrameId) {
        let idx = self.grow_to(home);
        if self.entries[idx].is_none() {
            self.live += 1;
        }
        self.entries[idx] = Some(SptEntry::new(home));
    }

    /// Removes a page's entry (frame freed or swapped out), returning it so
    /// paging can transfer it into the SIT.
    pub fn remove(&mut self, home: FrameId) -> Option<SptEntry> {
        let taken = self.entries.get_mut(home.0 as usize)?.take();
        if taken.is_some() {
            self.live -= 1;
        }
        taken
    }

    /// Re-inserts an entry (swap-in migrates a SIT entry back here under the
    /// page's new frame).
    pub fn insert(&mut self, entry: SptEntry) {
        let idx = self.grow_to(entry.home);
        if self.entries[idx].is_none() {
            self.live += 1;
        }
        self.entries[idx] = Some(entry);
    }

    /// Looks up the entry for a home page. Shadow pages themselves have no
    /// valid entry, as in the paper.
    pub fn entry(&self, home: FrameId) -> Option<&SptEntry> {
        self.entries.get(home.0 as usize)?.as_ref()
    }

    /// Mutable lookup.
    pub fn entry_mut(&mut self, home: FrameId) -> Option<&mut SptEntry> {
        self.entries.get_mut(home.0 as usize)?.as_mut()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates over all entries in frame order.
    pub fn iter(&self) -> impl Iterator<Item = &SptEntry> {
        self.entries.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_defaults_to_home() {
        let mut spt = ShadowPageTable::new();
        spt.on_page_alloc(FrameId(1));
        let e = spt.entry(FrameId(1)).unwrap();
        for b in BlockIdx::all() {
            assert_eq!(e.committed_frame(b), FrameId(1));
        }
    }

    #[test]
    fn selection_bit_redirects_committed_to_shadow() {
        let mut spt = ShadowPageTable::new();
        spt.on_page_alloc(FrameId(1));
        let e = spt.entry_mut(FrameId(1)).unwrap();
        e.shadow = Some(FrameId(9));
        e.sel.set(BlockIdx(4));
        assert_eq!(e.committed_frame(BlockIdx(4)), FrameId(9));
        assert_eq!(e.committed_frame(BlockIdx(5)), FrameId(1));
        // Speculative is always the other page.
        assert_eq!(e.speculative_frame(BlockIdx(4)), FrameId(1));
        assert_eq!(e.speculative_frame(BlockIdx(5)), FrameId(9));
    }

    #[test]
    fn selection_bit_without_shadow_still_reads_home() {
        // A stale selection bit with no shadow (e.g. Copy-PTM) must not
        // redirect anywhere.
        let mut e = SptEntry::new(FrameId(2));
        e.sel.set(BlockIdx(0));
        assert_eq!(e.committed_frame(BlockIdx(0)), FrameId(2));
    }

    #[test]
    #[should_panic(expected = "needs a shadow page")]
    fn speculative_without_shadow_panics() {
        let e = SptEntry::new(FrameId(2));
        let _ = e.speculative_frame(BlockIdx(0));
    }

    #[test]
    fn remove_and_reinsert_round_trips() {
        let mut spt = ShadowPageTable::new();
        spt.on_page_alloc(FrameId(7));
        spt.entry_mut(FrameId(7)).unwrap().sel.set(BlockIdx(1));
        let e = spt.remove(FrameId(7)).unwrap();
        assert!(spt.entry(FrameId(7)).is_none());
        spt.insert(e);
        assert!(spt.entry(FrameId(7)).unwrap().sel.get(BlockIdx(1)));
    }

    #[test]
    fn direct_index_tracks_live_count() {
        let mut spt = ShadowPageTable::new();
        assert!(spt.is_empty());
        spt.on_page_alloc(FrameId(5));
        spt.on_page_alloc(FrameId(0));
        assert_eq!(spt.len(), 2);
        // Re-registering an already-live frame must not double count.
        spt.on_page_alloc(FrameId(5));
        assert_eq!(spt.len(), 2);
        assert!(spt.remove(FrameId(5)).is_some());
        assert!(spt.remove(FrameId(5)).is_none(), "second remove is a no-op");
        assert_eq!(spt.len(), 1);
        // Out-of-range lookups are None, not panics.
        assert!(spt.entry(FrameId(1_000)).is_none());
        assert!(spt.remove(FrameId(1_000)).is_none());
        assert_eq!(spt.iter().count(), 1);
    }

    #[test]
    fn summary_hit_tests_both_vectors() {
        let mut e = SptEntry::new(FrameId(0));
        assert!(!e.summary_hit(BlockIdx(3)));
        e.sum_read.set(BlockIdx(3));
        assert!(e.summary_hit(BlockIdx(3)));
        e.sum_read.clear(BlockIdx(3));
        e.sum_write.set(BlockIdx(3));
        assert!(e.summary_hit(BlockIdx(3)));
        assert!(!e.summary_hit(BlockIdx(4)));
    }
}
