//! The Shadow Page Table (SPT): one entry per resident physical page.
//!
//! An SPT entry (Figure 1) anchors everything PTM knows about a page: the
//! shadow-page pointer (valid only once a dirty overflow allocated one), the
//! Select-PTM selection vector, the head of the page's horizontal TAV list,
//! and the page's conflict *summary* vectors — the running union of every
//! live transaction's read/write vectors for the page (§4.2.2), kept
//! incrementally so a conflict check can reject most accesses in O(1)
//! without walking the TAV list.
//!
//! The table itself is direct-indexed by frame number, matching the
//! hardware's "indexed by physical page number" organization and avoiding
//! hash lookups on the miss path.
//!
//! # Layout
//!
//! Storage is split hot/cold. The summary vectors — the only fields the
//! O(1) conflict pre-filter reads — live in two dense `Vec<BlockVec>`
//! columns (16 bytes per frame across both, four frames per cache line,
//! `EMPTY` when the frame has no entry). Everything else sits in a parallel
//! cold column of [`SptMeta`]. [`SptEntry`] remains the full
//! gather/scatter value type used at the paging boundary (SIT migration,
//! swap-out/in round trips).

use crate::tav::TavRef;
use ptm_types::{BlockIdx, BlockVec, FrameId};

/// One Shadow Page Table entry, as a plain value: the gather/scatter form
/// used when an entry crosses the paging boundary (into or out of the SIT).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SptEntry {
    /// The home page this entry describes.
    pub home: FrameId,
    /// The shadow page, once allocated by a dirty overflow.
    pub shadow: Option<FrameId>,
    /// Selection vector: a set bit means the *committed* version of that
    /// block lives in the shadow page (Select-PTM only; Copy-PTM leaves it
    /// empty).
    pub sel: BlockVec,
    /// Word-granularity configurations: blocks that have *ever* had two
    /// writers (transactional or not) while transactional state was live.
    /// Contested blocks use word-masked data movement and merge commits;
    /// uncontested blocks keep the whole-block / selection-toggle fast path.
    /// Sticky by design — conservative and cheap.
    pub contested: BlockVec,
    /// Head of the page's horizontal TAV list.
    pub tav_head: Option<TavRef>,
    /// Union of the read vectors of every node on the TAV list — the read
    /// summary vector. Maintained incrementally on overflow and rebuilt when
    /// a node is unlinked; always equals `TavArena::read_summary(tav_head)`.
    pub sum_read: BlockVec,
    /// Union of the write vectors of every node on the TAV list — the write
    /// summary vector; always equals `TavArena::write_summary(tav_head)`.
    pub sum_write: BlockVec,
}

impl SptEntry {
    fn new(home: FrameId) -> Self {
        SptEntry {
            home,
            shadow: None,
            sel: BlockVec::EMPTY,
            contested: BlockVec::EMPTY,
            tav_head: None,
            sum_read: BlockVec::EMPTY,
            sum_write: BlockVec::EMPTY,
        }
    }

    /// Whether any live transaction overflowed *any* access (read or write)
    /// of `block` — the O(1) conflict pre-filter test.
    pub fn summary_hit(&self, block: BlockIdx) -> bool {
        self.sum_read.get(block) || self.sum_write.get(block)
    }
}

/// The cold column of an SPT entry: everything except the summary vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SptMeta {
    /// The home page this entry describes.
    pub home: FrameId,
    /// The shadow page, once allocated by a dirty overflow.
    pub shadow: Option<FrameId>,
    /// Selection vector (see [`SptEntry::sel`]).
    pub sel: BlockVec,
    /// Contested-block vector (see [`SptEntry::contested`]).
    pub contested: BlockVec,
    /// Head of the page's horizontal TAV list.
    pub tav_head: Option<TavRef>,
}

impl SptMeta {
    /// The frame currently holding the *committed* version of `block`.
    ///
    /// With no shadow page (or a clear selection bit) that is the home page;
    /// a set selection bit redirects to the shadow.
    #[inline]
    pub fn committed_frame(&self, block: BlockIdx) -> FrameId {
        match self.shadow {
            Some(shadow) if self.sel.get(block) => shadow,
            _ => self.home,
        }
    }

    /// The frame that holds (or will hold) the *speculative* version of
    /// `block` — the opposite page from the committed one.
    ///
    /// # Panics
    ///
    /// Panics if no shadow page is allocated; speculative placement is only
    /// meaningful once a dirty overflow allocated one.
    #[inline]
    pub fn speculative_frame(&self, block: BlockIdx) -> FrameId {
        let shadow = self
            .shadow
            .expect("speculative location needs a shadow page");
        if self.sel.get(block) {
            self.home
        } else {
            shadow
        }
    }
}

/// The Shadow Page Table, direct-indexed by physical page number, with the
/// summary vectors split into dense hot columns.
///
/// # Examples
///
/// ```
/// use ptm_core::spt::ShadowPageTable;
/// use ptm_types::{BlockIdx, FrameId};
///
/// let mut spt = ShadowPageTable::new();
/// spt.on_page_alloc(FrameId(3));
/// let e = spt.entry(FrameId(3)).unwrap();
/// assert_eq!(e.committed_frame(BlockIdx(0)), FrameId(3));
/// assert!(e.shadow.is_none());
/// assert!(!spt.summary_hit(FrameId(3), BlockIdx(0)));
/// ```
#[derive(Debug, Default, Clone)]
pub struct ShadowPageTable {
    /// Hot column: per-frame read summary (`EMPTY` when absent).
    sum_read: Vec<BlockVec>,
    /// Hot column: per-frame write summary (`EMPTY` when absent).
    sum_write: Vec<BlockVec>,
    /// Cold column: the rest of the entry.
    metas: Vec<Option<SptMeta>>,
    live: usize,
}

impl ShadowPageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    fn grow_to(&mut self, home: FrameId) -> usize {
        let idx = home.0 as usize;
        if idx >= self.metas.len() {
            self.metas.resize(idx + 1, None);
            self.sum_read.resize(idx + 1, BlockVec::EMPTY);
            self.sum_write.resize(idx + 1, BlockVec::EMPTY);
        }
        idx
    }

    /// Registers a freshly allocated physical page ("when a page is
    /// allocated, its entry in the SPT is initialized and marked as valid").
    pub fn on_page_alloc(&mut self, home: FrameId) {
        let idx = self.grow_to(home);
        if self.metas[idx].is_none() {
            self.live += 1;
        }
        let fresh = SptEntry::new(home);
        self.metas[idx] = Some(SptMeta {
            home: fresh.home,
            shadow: fresh.shadow,
            sel: fresh.sel,
            contested: fresh.contested,
            tav_head: fresh.tav_head,
        });
        self.sum_read[idx] = BlockVec::EMPTY;
        self.sum_write[idx] = BlockVec::EMPTY;
    }

    /// Removes a page's entry (frame freed or swapped out), gathering the
    /// hot and cold columns back into a full [`SptEntry`] so paging can
    /// transfer it into the SIT.
    pub fn remove(&mut self, home: FrameId) -> Option<SptEntry> {
        let idx = home.0 as usize;
        let meta = self.metas.get_mut(idx)?.take()?;
        self.live -= 1;
        let sum_read = std::mem::replace(&mut self.sum_read[idx], BlockVec::EMPTY);
        let sum_write = std::mem::replace(&mut self.sum_write[idx], BlockVec::EMPTY);
        Some(SptEntry {
            home: meta.home,
            shadow: meta.shadow,
            sel: meta.sel,
            contested: meta.contested,
            tav_head: meta.tav_head,
            sum_read,
            sum_write,
        })
    }

    /// Re-inserts an entry (swap-in migrates a SIT entry back here under the
    /// page's new frame), scattering it across the hot and cold columns.
    pub fn insert(&mut self, entry: SptEntry) {
        let idx = self.grow_to(entry.home);
        if self.metas[idx].is_none() {
            self.live += 1;
        }
        self.sum_read[idx] = entry.sum_read;
        self.sum_write[idx] = entry.sum_write;
        self.metas[idx] = Some(SptMeta {
            home: entry.home,
            shadow: entry.shadow,
            sel: entry.sel,
            contested: entry.contested,
            tav_head: entry.tav_head,
        });
    }

    /// Looks up the (cold) entry for a home page. Shadow pages themselves
    /// have no valid entry, as in the paper.
    #[inline]
    pub fn entry(&self, home: FrameId) -> Option<&SptMeta> {
        self.metas.get(home.0 as usize)?.as_ref()
    }

    /// Mutable lookup of the cold column.
    #[inline]
    pub fn entry_mut(&mut self, home: FrameId) -> Option<&mut SptMeta> {
        self.metas.get_mut(home.0 as usize)?.as_mut()
    }

    /// The page's read summary vector (`EMPTY` for unregistered frames).
    #[inline(always)]
    pub fn sum_read(&self, home: FrameId) -> BlockVec {
        self.sum_read
            .get(home.0 as usize)
            .copied()
            .unwrap_or(BlockVec::EMPTY)
    }

    /// The page's write summary vector (`EMPTY` for unregistered frames).
    #[inline(always)]
    pub fn sum_write(&self, home: FrameId) -> BlockVec {
        self.sum_write
            .get(home.0 as usize)
            .copied()
            .unwrap_or(BlockVec::EMPTY)
    }

    /// Both summary vectors in one load pair — the conflict-check read.
    #[inline(always)]
    pub fn summaries(&self, home: FrameId) -> (BlockVec, BlockVec) {
        (self.sum_read(home), self.sum_write(home))
    }

    /// Whether any live transaction overflowed *any* access (read or write)
    /// of `block` on this page — the O(1) conflict pre-filter, straight off
    /// the dense hot columns.
    #[inline(always)]
    pub fn summary_hit(&self, home: FrameId, block: BlockIdx) -> bool {
        (self.sum_read(home) | self.sum_write(home)).get(block)
    }

    /// Sets the read-summary bit for `block` (incremental maintenance on
    /// overflow).
    #[inline]
    pub fn mark_sum_read(&mut self, home: FrameId, block: BlockIdx) {
        self.sum_read[home.0 as usize].set(block);
    }

    /// Sets the write-summary bit for `block`.
    #[inline]
    pub fn mark_sum_write(&mut self, home: FrameId, block: BlockIdx) {
        self.sum_write[home.0 as usize].set(block);
    }

    /// Replaces both summary vectors (rebuild after a TAV unlink).
    #[inline]
    pub fn set_summaries(&mut self, home: FrameId, sum_read: BlockVec, sum_write: BlockVec) {
        let idx = home.0 as usize;
        self.sum_read[idx] = sum_read;
        self.sum_write[idx] = sum_write;
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates over all (cold) entries in frame order.
    pub fn iter(&self) -> impl Iterator<Item = &SptMeta> {
        self.metas.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_defaults_to_home() {
        let mut spt = ShadowPageTable::new();
        spt.on_page_alloc(FrameId(1));
        let e = spt.entry(FrameId(1)).unwrap();
        for b in BlockIdx::all() {
            assert_eq!(e.committed_frame(b), FrameId(1));
        }
    }

    #[test]
    fn selection_bit_redirects_committed_to_shadow() {
        let mut spt = ShadowPageTable::new();
        spt.on_page_alloc(FrameId(1));
        let e = spt.entry_mut(FrameId(1)).unwrap();
        e.shadow = Some(FrameId(9));
        e.sel.set(BlockIdx(4));
        assert_eq!(e.committed_frame(BlockIdx(4)), FrameId(9));
        assert_eq!(e.committed_frame(BlockIdx(5)), FrameId(1));
        // Speculative is always the other page.
        assert_eq!(e.speculative_frame(BlockIdx(4)), FrameId(1));
        assert_eq!(e.speculative_frame(BlockIdx(5)), FrameId(9));
    }

    #[test]
    fn selection_bit_without_shadow_still_reads_home() {
        // A stale selection bit with no shadow (e.g. Copy-PTM) must not
        // redirect anywhere.
        let mut spt = ShadowPageTable::new();
        spt.on_page_alloc(FrameId(2));
        let e = spt.entry_mut(FrameId(2)).unwrap();
        e.sel.set(BlockIdx(0));
        assert_eq!(e.committed_frame(BlockIdx(0)), FrameId(2));
    }

    #[test]
    #[should_panic(expected = "needs a shadow page")]
    fn speculative_without_shadow_panics() {
        let mut spt = ShadowPageTable::new();
        spt.on_page_alloc(FrameId(2));
        let _ = spt
            .entry(FrameId(2))
            .unwrap()
            .speculative_frame(BlockIdx(0));
    }

    #[test]
    fn remove_and_reinsert_round_trips() {
        let mut spt = ShadowPageTable::new();
        spt.on_page_alloc(FrameId(7));
        spt.entry_mut(FrameId(7)).unwrap().sel.set(BlockIdx(1));
        spt.mark_sum_write(FrameId(7), BlockIdx(2));
        let e = spt.remove(FrameId(7)).unwrap();
        assert!(spt.entry(FrameId(7)).is_none());
        assert!(
            spt.sum_write(FrameId(7)).is_empty(),
            "hot column cleared on remove"
        );
        assert!(e.sum_write.get(BlockIdx(2)), "sums gathered into the value");
        spt.insert(e);
        assert!(spt.entry(FrameId(7)).unwrap().sel.get(BlockIdx(1)));
        assert!(
            spt.sum_write(FrameId(7)).get(BlockIdx(2)),
            "sums scattered back"
        );
    }

    #[test]
    fn direct_index_tracks_live_count() {
        let mut spt = ShadowPageTable::new();
        assert!(spt.is_empty());
        spt.on_page_alloc(FrameId(5));
        spt.on_page_alloc(FrameId(0));
        assert_eq!(spt.len(), 2);
        // Re-registering an already-live frame must not double count.
        spt.on_page_alloc(FrameId(5));
        assert_eq!(spt.len(), 2);
        assert!(spt.remove(FrameId(5)).is_some());
        assert!(spt.remove(FrameId(5)).is_none(), "second remove is a no-op");
        assert_eq!(spt.len(), 1);
        // Out-of-range lookups are None, not panics.
        assert!(spt.entry(FrameId(1_000)).is_none());
        assert!(spt.remove(FrameId(1_000)).is_none());
        assert_eq!(spt.iter().count(), 1);
    }

    #[test]
    fn summary_hit_tests_both_vectors() {
        let mut spt = ShadowPageTable::new();
        spt.on_page_alloc(FrameId(0));
        assert!(!spt.summary_hit(FrameId(0), BlockIdx(3)));
        spt.mark_sum_read(FrameId(0), BlockIdx(3));
        assert!(spt.summary_hit(FrameId(0), BlockIdx(3)));
        spt.set_summaries(FrameId(0), BlockVec::EMPTY, BlockVec::EMPTY);
        assert!(!spt.summary_hit(FrameId(0), BlockIdx(3)));
        spt.mark_sum_write(FrameId(0), BlockIdx(3));
        assert!(spt.summary_hit(FrameId(0), BlockIdx(3)));
        assert!(!spt.summary_hit(FrameId(0), BlockIdx(4)));
        // Unregistered frames read as all-empty, never as a hit.
        assert!(!spt.summary_hit(FrameId(999), BlockIdx(0)));
    }

    #[test]
    fn value_type_summary_hit_matches() {
        let mut e = SptEntry::new(FrameId(0));
        assert!(!e.summary_hit(BlockIdx(3)));
        e.sum_read.set(BlockIdx(3));
        assert!(e.summary_hit(BlockIdx(3)));
    }
}
