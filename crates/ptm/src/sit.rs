//! The Swap Index Table (SIT): PTM state for swapped-out pages.
//!
//! When the operating system swaps a home page out, its SPT entry moves
//! here, indexed by the swap slot ("swap index number") instead of the
//! physical page number (§3.5.1). The shadow page is swapped alongside it —
//! home and shadow can never be swapped independently.

use crate::spt::SptEntry;
use crate::tav::TavRef;
use ptm_types::{BlockVec, SwapSlot};

/// PTM state of one swapped-out page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SitEntry {
    /// The slot the home page's data went to.
    pub home_slot: SwapSlot,
    /// The slot the shadow page's data went to, if a shadow existed.
    pub shadow_slot: Option<SwapSlot>,
    /// The selection vector carried across the swap.
    pub sel: BlockVec,
    /// The contested-block vector carried across the swap.
    pub contested: BlockVec,
    /// The page's TAV list survives the swap untouched.
    pub tav_head: Option<TavRef>,
    /// The read summary vector carried across the swap.
    pub sum_read: BlockVec,
    /// The write summary vector carried across the swap.
    pub sum_write: BlockVec,
}

impl SitEntry {
    /// Converts a removed SPT entry into a SIT entry, recording where the
    /// two pages' data went.
    pub fn from_spt(entry: &SptEntry, home_slot: SwapSlot, shadow_slot: Option<SwapSlot>) -> Self {
        assert_eq!(
            entry.shadow.is_some(),
            shadow_slot.is_some(),
            "shadow page must swap with its home page"
        );
        SitEntry {
            home_slot,
            shadow_slot,
            sel: entry.sel,
            contested: entry.contested,
            tav_head: entry.tav_head,
            sum_read: entry.sum_read,
            sum_write: entry.sum_write,
        }
    }
}

/// The Swap Index Table, indexed by the home page's swap slot.
///
/// # Examples
///
/// ```
/// use ptm_core::sit::{SitEntry, SwapIndexTable};
/// use ptm_core::spt::ShadowPageTable;
/// use ptm_types::{FrameId, SwapSlot};
///
/// let mut spt = ShadowPageTable::new();
/// spt.on_page_alloc(FrameId(0));
/// let e = spt.remove(FrameId(0)).unwrap();
/// let mut sit = SwapIndexTable::new();
/// sit.insert(SitEntry::from_spt(&e, SwapSlot(3), None));
/// assert!(sit.entry(SwapSlot(3)).is_some());
/// ```
#[derive(Debug, Default, Clone)]
pub struct SwapIndexTable {
    /// Direct-indexed by home slot number, like the SPT is by frame number:
    /// swap slots are small dense integers handed out by the swap store, so
    /// a flat vector replaces hashing on every lookup.
    entries: Vec<Option<SitEntry>>,
    live: usize,
}

impl SwapIndexTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a swapped-out page's PTM state.
    pub fn insert(&mut self, entry: SitEntry) {
        let idx = entry.home_slot.0 as usize;
        if idx >= self.entries.len() {
            self.entries.resize(idx + 1, None);
        }
        if self.entries[idx].is_none() {
            self.live += 1;
        }
        self.entries[idx] = Some(entry);
    }

    /// Removes the state for a page being swapped back in.
    pub fn remove(&mut self, home_slot: SwapSlot) -> Option<SitEntry> {
        let taken = self.entries.get_mut(home_slot.0 as usize)?.take();
        if taken.is_some() {
            self.live -= 1;
        }
        taken
    }

    /// Looks up a swapped page's state.
    #[inline]
    pub fn entry(&self, home_slot: SwapSlot) -> Option<&SitEntry> {
        self.entries.get(home_slot.0 as usize)?.as_ref()
    }

    /// Mutable lookup — lazy commit/abort cleanup of a transaction whose
    /// page is swapped out updates the entry in place (§3.5.1).
    #[inline]
    pub fn entry_mut(&mut self, home_slot: SwapSlot) -> Option<&mut SitEntry> {
        self.entries.get_mut(home_slot.0 as usize)?.as_mut()
    }

    /// Number of swapped transactional pages.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` if no swapped pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// All swapped pages' entries, in home-slot order — the direct index
    /// yields that order naturally, so walkers (recovery, diagnostics) are
    /// deterministic with no sort.
    pub fn iter(&self) -> impl Iterator<Item = &SitEntry> {
        self.entries.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spt::ShadowPageTable;
    use ptm_types::{BlockIdx, FrameId};

    #[test]
    fn from_spt_preserves_sel_and_tav() {
        let mut spt = ShadowPageTable::new();
        spt.on_page_alloc(FrameId(0));
        {
            let e = spt.entry_mut(FrameId(0)).unwrap();
            e.shadow = Some(FrameId(5));
            e.sel.set(BlockIdx(2));
        }
        let e = spt.remove(FrameId(0)).unwrap();
        let sit = SitEntry::from_spt(&e, SwapSlot(1), Some(SwapSlot(2)));
        assert!(sit.sel.get(BlockIdx(2)));
        assert_eq!(sit.shadow_slot, Some(SwapSlot(2)));
    }

    #[test]
    #[should_panic(expected = "shadow page must swap with its home page")]
    fn shadow_and_slot_must_agree() {
        let mut spt = ShadowPageTable::new();
        spt.on_page_alloc(FrameId(0));
        spt.entry_mut(FrameId(0)).unwrap().shadow = Some(FrameId(5));
        let e = spt.remove(FrameId(0)).unwrap();
        let _ = SitEntry::from_spt(&e, SwapSlot(1), None);
    }

    #[test]
    fn iter_is_slot_ordered_and_len_tracks_live() {
        let mut spt = ShadowPageTable::new();
        let mut sit = SwapIndexTable::new();
        for f in [0u32, 1, 2] {
            spt.on_page_alloc(FrameId(f));
        }
        // Insert out of order; iteration must come back slot-sorted.
        for slot in [5u32, 1, 9] {
            let e = spt.remove(FrameId(slot % 3)).unwrap();
            sit.insert(SitEntry::from_spt(&e, SwapSlot(slot), None));
        }
        let order: Vec<SwapSlot> = sit.iter().map(|e| e.home_slot).collect();
        assert_eq!(order, vec![SwapSlot(1), SwapSlot(5), SwapSlot(9)]);
        assert_eq!(sit.len(), 3);
        assert!(sit.remove(SwapSlot(5)).is_some());
        assert!(
            sit.remove(SwapSlot(5)).is_none(),
            "second remove is a no-op"
        );
        assert_eq!(sit.len(), 2);
        assert!(sit.entry(SwapSlot(1_000)).is_none());
    }

    #[test]
    fn insert_remove_round_trip() {
        let mut spt = ShadowPageTable::new();
        spt.on_page_alloc(FrameId(0));
        let e = spt.remove(FrameId(0)).unwrap();
        let mut sit = SwapIndexTable::new();
        sit.insert(SitEntry::from_spt(&e, SwapSlot(7), None));
        assert_eq!(sit.len(), 1);
        let back = sit.remove(SwapSlot(7)).unwrap();
        assert_eq!(back.home_slot, SwapSlot(7));
        assert!(sit.is_empty());
    }
}
