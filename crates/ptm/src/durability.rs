//! The durability seam: log-force policies and checksummed record framing
//! over the write-behind [`LogDevice`].
//!
//! HTPM/DUMBO-style durable transactional memory persists three things
//! through the log device: per-transaction **commit records** (the
//! durability point), **undo payloads** (the committed pre-image of a block
//! the first time a transaction's dirty write overflows to memory) and
//! **redo payloads** (the words a commit publishes from its speculative
//! buffers). [`DurableLog`] owns the device and a [`ForcePolicy`] deciding
//! when commit records are *forced* (flush barrier) rather than left
//! write-behind:
//!
//! * [`ForcePolicy::Eager`] — force on every writing commit; a committed
//!   transaction's record is always durable, at full flush latency per
//!   commit.
//! * [`ForcePolicy::Lazy`] — never force; commit latency is minimal but a
//!   crash may lose the records (not the data — PTM's metadata tables are
//!   write-through, see DESIGN.md decisions 19/22) of recent commits.
//! * [`ForcePolicy::Group`] — force every N-th writing commit, amortizing
//!   the flush.
//!
//! Read-only transactions take the DUMBO fast path regardless of policy:
//! they wrote nothing, so they append no record and never force.
//!
//! Eager-versioning backends (LogTM) put the log in **WAL mode**
//! ([`DurableLog::set_wal`]): their stores update memory in place, so the
//! word pre-image ([`LogRecordKind::WordUndo`]) must be durable *before*
//! the store — each word-undo append is forced, as is the abort record
//! that voids a retried incarnation's pre-images. Commit records keep the
//! configured force policy; commit-ness is recovered from the durable
//! T-State table, so a lost lazy commit record costs an observation, not
//! data.
//!
//! Every record is framed with a 16-byte header and an FNV-1a checksum
//! trailer ([`ptm_types::rng::Fnv1a64`]), so [`scan_records`] can detect
//! torn tails and holes left by reordered or torn in-flight appends. The
//! scan is **bounded**: it stops at the first invalid record instead of
//! hunting the tail for salvageable frames — everything past the cut is
//! counted, not trusted (see `ISSUE` satellite on bounded tail scans).
//!
//! Device refusals are absorbed here so callers never see them:
//! [`DurableLog`] retries transient errors with exponential backoff and
//! waits out stall windows, charging the cycles to the caller's commit.
//! Both loops are bounded by device construction
//! ([`ptm_mem::logdev::MAX_CONSECUTIVE_TRANSIENTS`], one stall window per
//! record), proven by the `max_append_attempts` counter staying at or below
//! [`MAX_LOG_RETRIES`].

use ptm_mem::logdev::{LogAppendError, LogDevConfig, LogDevStats, LogDevice, LogFaultPlan};
use ptm_types::rng::Fnv1a64;
use ptm_types::{
    BlockIdx, Cycle, FastMap, FastSet, PhysAddr, PhysBlock, ProcessId, TxId, Vpn, BLOCK_SIZE,
};

/// Record-frame magic ("PTLG" little-endian).
pub const RECORD_MAGIC: u32 = 0x474C_5450;

/// Frame header bytes: magic (4) + kind (1) + reserved (1) + payload length
/// (2) + transaction id (8).
pub const RECORD_HEADER: usize = 16;

/// Frame trailer bytes: the FNV-1a checksum of header + payload.
pub const RECORD_TRAILER: usize = 8;

/// Hard bound on append attempts for one record. The device bounds
/// consecutive transient rejections and deals at most one stall window per
/// record, so `stall + transients + success` fits well under this; crossing
/// it is a device-model bug, not bad luck.
pub const MAX_LOG_RETRIES: u32 = 8;

/// Base cycles of the exponential backoff after a transient append error.
const BACKOFF_BASE: Cycle = 32;

/// When a commit record must be forced to durable media.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForcePolicy {
    /// Force on every writing commit.
    Eager,
    /// Never force; records ride write-behind.
    Lazy,
    /// Force every N-th writing commit (N ≥ 1; `Group(1)` behaves like
    /// `Eager`).
    Group(u32),
}

impl ForcePolicy {
    /// The canonical report label (`eager`, `lazy`, `group4`, …).
    pub fn label(&self) -> String {
        match self {
            ForcePolicy::Eager => "eager".to_string(),
            ForcePolicy::Lazy => "lazy".to_string(),
            ForcePolicy::Group(n) => format!("group{n}"),
        }
    }
}

impl std::fmt::Display for ForcePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Parses a force-policy name, case-insensitively: `eager`, `lazy`,
/// `group` (N = 4) or `group:N`. Unknown names are a hard error naming the
/// offending value — a typo must not silently change the durability
/// contract under test.
pub fn parse_force_policy(name: &str) -> Result<ForcePolicy, String> {
    let lower = name.to_ascii_lowercase();
    match lower.as_str() {
        "eager" => return Ok(ForcePolicy::Eager),
        "lazy" => return Ok(ForcePolicy::Lazy),
        "group" => return Ok(ForcePolicy::Group(4)),
        _ => {}
    }
    if let Some(n) = lower.strip_prefix("group:") {
        return match n.parse::<u32>() {
            Ok(n) if n >= 1 => Ok(ForcePolicy::Group(n)),
            _ => Err(format!(
                "invalid group-commit size {n:?} in PTM_FORCE_POLICY: want an integer >= 1"
            )),
        };
    }
    Err(format!(
        "unknown force policy {name:?}: valid values are eager, lazy, group, group:N"
    ))
}

/// What a log record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogRecordKind {
    /// A transaction committed (the durability point when forced).
    Commit,
    /// A transaction aborted (its undo/redo records are void).
    Abort,
    /// Committed pre-image of a block a live transaction dirtied in memory.
    Undo,
    /// Words a commit published from its speculative buffers.
    Redo,
    /// Pre-image of one word an eager-versioning (LogTM) store updated in
    /// place — forced before the store lands (WAL mode).
    WordUndo,
    /// Service journal: a client transaction was accepted at the frontend.
    /// The service's ingest journal shares this frame format (and
    /// [`scan_records`]) so its recovery inherits the same torn-tail and
    /// hole detection as the machine-level log.
    SvcAccept,
    /// Service journal: the preceding accepted transactions were sealed
    /// into a block.
    SvcSeal,
    /// Service journal: a sealed block executed; the payload carries its
    /// redo deltas (the block's durability point when forced).
    SvcCommit,
}

impl LogRecordKind {
    fn to_byte(self) -> u8 {
        match self {
            LogRecordKind::Commit => 1,
            LogRecordKind::Abort => 2,
            LogRecordKind::Undo => 3,
            LogRecordKind::Redo => 4,
            LogRecordKind::WordUndo => 5,
            LogRecordKind::SvcAccept => 6,
            LogRecordKind::SvcSeal => 7,
            LogRecordKind::SvcCommit => 8,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(LogRecordKind::Commit),
            2 => Some(LogRecordKind::Abort),
            3 => Some(LogRecordKind::Undo),
            4 => Some(LogRecordKind::Redo),
            5 => Some(LogRecordKind::WordUndo),
            6 => Some(LogRecordKind::SvcAccept),
            7 => Some(LogRecordKind::SvcSeal),
            8 => Some(LogRecordKind::SvcCommit),
            _ => None,
        }
    }
}

/// One decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// What the record describes.
    pub kind: LogRecordKind,
    /// The transaction it belongs to.
    pub tx: TxId,
    /// Kind-specific payload (see the `encode_*_payload` helpers).
    pub payload: Vec<u8>,
}

/// Frames a record: header, payload, FNV-1a checksum trailer.
pub fn encode_record(kind: LogRecordKind, tx: TxId, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= u16::MAX as usize, "payload fits the frame");
    let mut out = Vec::with_capacity(RECORD_HEADER + payload.len() + RECORD_TRAILER);
    out.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
    out.push(kind.to_byte());
    out.push(0);
    out.extend_from_slice(&(payload.len() as u16).to_le_bytes());
    out.extend_from_slice(&tx.0.to_le_bytes());
    out.extend_from_slice(payload);
    let mut h = Fnv1a64::new();
    h.write_bytes(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

/// The undo payload: which committed block image was captured, and where
/// its page lived virtually (so recovery can re-read the recovered value
/// through the normal committed-read path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndoPayload {
    /// Owning process of the page.
    pub pid: ProcessId,
    /// Virtual page number.
    pub vpn: Vpn,
    /// Block within the page.
    pub block: BlockIdx,
    /// The committed pre-image.
    pub data: [u8; BLOCK_SIZE],
}

/// Encodes an [`UndoPayload`].
pub fn encode_undo_payload(p: &UndoPayload) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + BLOCK_SIZE);
    out.extend_from_slice(&p.pid.0.to_le_bytes());
    out.push(p.block.0);
    out.push(0);
    out.extend_from_slice(&p.vpn.0.to_le_bytes());
    out.extend_from_slice(&p.data);
    out
}

/// Checksums an encoded undo payload. [`DurableLog`] keeps this per
/// current (latest-incarnation) undo append and recovery recomputes it per
/// scanned record, so reconciliation can skip pre-images that an abort
/// already voided instead of miscounting them as corruption.
pub fn undo_payload_checksum(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.write_bytes(bytes);
    h.finish()
}

/// Decodes an [`UndoPayload`]; `None` if the payload is malformed.
pub fn decode_undo_payload(bytes: &[u8]) -> Option<UndoPayload> {
    if bytes.len() != 12 + BLOCK_SIZE {
        return None;
    }
    Some(UndoPayload {
        pid: ProcessId(u16::from_le_bytes(bytes[0..2].try_into().ok()?)),
        block: BlockIdx(bytes[2]),
        vpn: Vpn(u64::from_le_bytes(bytes[4..12].try_into().ok()?)),
        data: bytes[12..].try_into().ok()?,
    })
}

/// Encodes a word-undo payload: the physical word address plus its
/// pre-transaction value.
pub fn encode_word_undo_payload(pa: PhysAddr, old: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(12);
    out.extend_from_slice(&pa.0.to_le_bytes());
    out.extend_from_slice(&old.to_le_bytes());
    out
}

/// Decodes a word-undo payload; `None` if the payload is malformed.
pub fn decode_word_undo_payload(bytes: &[u8]) -> Option<(PhysAddr, u32)> {
    if bytes.len() != 12 {
        return None;
    }
    Some((
        PhysAddr(u64::from_le_bytes(bytes[0..8].try_into().ok()?)),
        u32::from_le_bytes(bytes[8..12].try_into().ok()?),
    ))
}

/// Encodes a redo payload: the block plus each `(word, value)` published.
pub fn encode_redo_payload(block: PhysBlock, words: &[(u8, u32)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + words.len() * 5);
    out.extend_from_slice(&block.frame().0.to_le_bytes());
    out.push(block.index().0);
    out.push(words.len() as u8);
    out.extend_from_slice(&[0, 0]);
    for (w, v) in words {
        out.push(*w);
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// The result of a bounded scan over a device image.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogScan {
    /// Records that validated, in log order.
    pub records: Vec<LogRecord>,
    /// Byte length of the valid prefix (truncate the image here).
    pub valid_len: usize,
    /// Records that began after the valid prefix but failed validation.
    /// The scan is bounded — it does not resync past the first bad frame —
    /// so this counts `1` for the frame at the cut (plus nothing behind
    /// it); `bytes_discarded` accounts for the rest.
    pub records_discarded: u64,
    /// Frames whose header parsed but whose checksum did not match
    /// (a subset of `records_discarded`).
    pub checksum_mismatches: u64,
    /// Bytes past the valid prefix (zero-filled holes included).
    pub bytes_discarded: u64,
}

/// Scans a device image for valid records. Bounded single forward pass:
/// stops at the first frame that fails magic, length or checksum
/// validation and discards everything after it (a hole's zero bytes fail
/// the magic check, so anything behind a hole is unreachable — exactly the
/// contiguous-prefix durability a log gives you).
pub fn scan_records(bytes: &[u8]) -> LogScan {
    let mut scan = LogScan::default();
    let mut pos = 0;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            break;
        }
        if rest.iter().all(|b| *b == 0) {
            // Clean zero tail: unwritten media, nothing was torn here.
            break;
        }
        let Some(frame) = try_decode(rest) else {
            // A frame started here but does not validate: torn append,
            // lost hole or corrupt trailer. Stop — bounded scan.
            scan.records_discarded += 1;
            if header_plausible(rest) {
                scan.checksum_mismatches += 1;
            }
            break;
        };
        let (record, framed_len) = frame;
        scan.records.push(record);
        pos += framed_len;
        scan.valid_len = pos;
    }
    scan.bytes_discarded = (bytes.len() - scan.valid_len) as u64;
    scan
}

/// Whether the bytes open with a syntactically valid header (used to
/// distinguish a checksum mismatch from structural garbage).
fn header_plausible(bytes: &[u8]) -> bool {
    bytes.len() >= RECORD_HEADER
        && bytes[0..4] == RECORD_MAGIC.to_le_bytes()
        && LogRecordKind::from_byte(bytes[4]).is_some()
}

/// Decodes one frame from the front of `bytes`; `None` if it fails any
/// validation. Returns the record and its framed length.
fn try_decode(bytes: &[u8]) -> Option<(LogRecord, usize)> {
    if bytes.len() < RECORD_HEADER + RECORD_TRAILER {
        return None;
    }
    if bytes[0..4] != RECORD_MAGIC.to_le_bytes() {
        return None;
    }
    let kind = LogRecordKind::from_byte(bytes[4])?;
    let len = u16::from_le_bytes(bytes[6..8].try_into().ok()?) as usize;
    let framed = RECORD_HEADER + len + RECORD_TRAILER;
    if bytes.len() < framed {
        return None;
    }
    let mut h = Fnv1a64::new();
    h.write_bytes(&bytes[..RECORD_HEADER + len]);
    let stored = u64::from_le_bytes(bytes[RECORD_HEADER + len..framed].try_into().ok()?);
    if h.finish() != stored {
        return None;
    }
    let tx = TxId(u64::from_le_bytes(bytes[8..16].try_into().ok()?));
    Some((
        LogRecord {
            kind,
            tx,
            payload: bytes[RECORD_HEADER..RECORD_HEADER + len].to_vec(),
        },
        framed,
    ))
}

/// Durable-log configuration: the policy plus the device underneath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// When commit records are forced.
    pub policy: ForcePolicy,
    /// Device geometry and latencies.
    pub dev: LogDevConfig,
    /// Device fault injection.
    pub faults: LogFaultPlan,
}

impl DurabilityConfig {
    /// Eager forcing over a zero-cost, fault-free device — the
    /// configuration that must be bit-identical to a volatile run.
    pub fn zero_cost_eager() -> Self {
        DurabilityConfig {
            policy: ForcePolicy::Eager,
            dev: LogDevConfig::zero_cost(),
            faults: LogFaultPlan::none(),
        }
    }
}

/// Caller-side durability counters (device counters live in
/// [`LogDevStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurStats {
    /// Commit records appended.
    pub commit_records: u64,
    /// Abort records appended.
    pub abort_records: u64,
    /// Undo payloads appended.
    pub undo_records: u64,
    /// Redo payloads appended.
    pub redo_records: u64,
    /// Word pre-images appended by eager-versioning stores (WAL mode).
    pub word_undo_records: u64,
    /// Read-only commits that skipped the log entirely (DUMBO fast path).
    pub ro_fastpath_commits: u64,
    /// Forces issued by the policy.
    pub policy_forces: u64,
    /// Forces issued by WAL mode (word-undo and abort appends), on top of
    /// whatever the commit policy forces.
    pub wal_forces: u64,
    /// Extra cycles charged to commits (appends, forces, backoff, stall
    /// waits) — the commit-latency cost of durability.
    pub commit_latency_cycles: u64,
    /// Transient-error retries performed.
    pub log_retries: u64,
    /// Cycles spent in exponential backoff after transient errors.
    pub backoff_cycles: u64,
    /// Times a commit was deferred or an append waited because the device
    /// stalled (graceful throttling, never deadlock).
    pub throttle_events: u64,
    /// Cycles spent throttled on device stalls.
    pub throttle_cycles: u64,
    /// Worst attempts needed for one append — the bounded-retry proof:
    /// never exceeds [`MAX_LOG_RETRIES`].
    pub max_append_attempts: u32,
}

/// The durable log a machine writes through: device + policy + per-
/// transaction write tracking for the read-only fast path.
#[derive(Debug, Clone)]
pub struct DurableLog {
    policy: ForcePolicy,
    dev: LogDevice,
    /// Transactions that wrote (any speculative write). Read-only commits
    /// are exactly the ones never inserted here.
    wrote: FastSet<TxId>,
    /// Blocks already undo-logged per live transaction (one pre-image per
    /// (tx, block), like a real undo log).
    undo_logged: FastMap<TxId, FastSet<PhysBlock>>,
    /// Checksums of the *current* undo payloads per transaction — the ones
    /// logged since the transaction's latest begin. An abort voids them
    /// (the retry re-captures fresh pre-images under the same `TxId`), so
    /// recovery can tell a live incarnation's pre-image from a stale one
    /// left by an earlier aborted incarnation.
    undo_sums: FastMap<TxId, Vec<u64>>,
    /// Transactions that committed via the read-only fast path (no record
    /// appended). Harness bookkeeping for log reconciliation: without it, a
    /// fast-path commit is indistinguishable from a lost commit record.
    ro_committed: FastSet<TxId>,
    /// Writing commits since the last policy force (group commit).
    commits_since_force: u32,
    /// Write-ahead mode for eager-versioning backends: word-undo and abort
    /// appends are forced regardless of the commit policy.
    wal: bool,
    stats: DurStats,
}

impl DurableLog {
    /// Creates a durable log.
    pub fn new(cfg: DurabilityConfig) -> Self {
        DurableLog {
            policy: cfg.policy,
            dev: LogDevice::new(cfg.dev, cfg.faults),
            wrote: FastSet::default(),
            undo_logged: FastMap::default(),
            undo_sums: FastMap::default(),
            ro_committed: FastSet::default(),
            commits_since_force: 0,
            wal: false,
            stats: DurStats::default(),
        }
    }

    /// The active force policy.
    pub fn policy(&self) -> ForcePolicy {
        self.policy
    }

    /// Switches write-ahead mode on or off (see [`DurableLog::wal`]'s
    /// field docs). Eager-versioning machines set it before running.
    pub fn set_wal(&mut self, wal: bool) {
        self.wal = wal;
    }

    /// Whether the log runs in write-ahead mode.
    pub fn wal(&self) -> bool {
        self.wal
    }

    /// Caller-side counters.
    pub fn stats(&self) -> &DurStats {
        &self.stats
    }

    /// Device counters.
    pub fn dev_stats(&self) -> &LogDevStats {
        self.dev.stats()
    }

    /// Marks `tx` as having written (disqualifies the read-only fast
    /// path).
    pub fn note_tx_write(&mut self, tx: TxId) {
        self.wrote.insert(tx);
    }

    /// Whether `tx` has written so far.
    pub fn tx_wrote(&self, tx: TxId) -> bool {
        self.wrote.contains(&tx)
    }

    /// Commit admission: a writing commit must not start while the device
    /// is stalled — the caller throttles (re-polls later) instead. Returns
    /// the deadline when blocked. Read-only commits never block (they
    /// touch no device).
    pub fn commit_blocked(&mut self, tx: TxId, now: Cycle) -> Option<Cycle> {
        if !self.tx_wrote(tx) {
            return None;
        }
        self.dev.poll(now);
        let until = self.dev.stalled_until(now)?;
        self.stats.throttle_events += 1;
        self.stats.throttle_cycles += until - now;
        Some(until)
    }

    /// Appends the committed pre-image of `block` for `tx` if this is the
    /// first time the transaction dirties it in memory. Write-behind: the
    /// returned cycles are backpressure/retry costs only.
    pub fn append_undo(
        &mut self,
        tx: TxId,
        block: PhysBlock,
        payload: UndoPayload,
        now: Cycle,
    ) -> Cycle {
        if !self.undo_logged.entry(tx).or_default().insert(block) {
            return 0;
        }
        let bytes = encode_undo_payload(&payload);
        self.undo_sums
            .entry(tx)
            .or_default()
            .push(undo_payload_checksum(&bytes));
        let rec = encode_record(LogRecordKind::Undo, tx, &bytes);
        self.stats.undo_records += 1;
        self.append_retrying(&rec, now)
    }

    /// Appends the pre-image of one word an eager-versioning store is about
    /// to overwrite in place, and forces it durable — the write-ahead rule:
    /// memory must never get ahead of the undo record it would take to roll
    /// the store back, or a crash strands a live transaction's write with
    /// no way to retire it. Returns the cycles charged to the store.
    pub fn append_word_undo(&mut self, tx: TxId, pa: PhysAddr, old: u32, now: Cycle) -> Cycle {
        let rec = encode_record(
            LogRecordKind::WordUndo,
            tx,
            &encode_word_undo_payload(pa, old),
        );
        self.stats.word_undo_records += 1;
        let mut lat = self.append_retrying(&rec, now);
        self.stats.wal_forces += 1;
        lat += self.dev.force(now + lat);
        lat
    }

    /// Appends the redo payload of one committed speculative buffer.
    pub fn append_redo(
        &mut self,
        tx: TxId,
        block: PhysBlock,
        words: &[(u8, u32)],
        now: Cycle,
    ) -> Cycle {
        let rec = encode_record(LogRecordKind::Redo, tx, &encode_redo_payload(block, words));
        self.stats.redo_records += 1;
        self.append_retrying(&rec, now)
    }

    /// Commits `tx`: read-only transactions skip the log entirely; writing
    /// transactions append a commit record and force per policy. Returns
    /// the cycles to add to the commit's latency.
    pub fn commit_tx(&mut self, tx: TxId, thread: u32, now: Cycle) -> Cycle {
        self.undo_logged.remove(&tx);
        self.undo_sums.remove(&tx);
        if !self.wrote.remove(&tx) {
            self.stats.ro_fastpath_commits += 1;
            self.ro_committed.insert(tx);
            return 0;
        }
        let mut payload = Vec::with_capacity(12);
        payload.extend_from_slice(&thread.to_le_bytes());
        payload.extend_from_slice(&now.to_le_bytes());
        let rec = encode_record(LogRecordKind::Commit, tx, &payload);
        self.stats.commit_records += 1;
        let mut lat = self.append_retrying(&rec, now);
        self.commits_since_force += 1;
        let force = match self.policy {
            ForcePolicy::Eager => true,
            ForcePolicy::Lazy => false,
            ForcePolicy::Group(n) => self.commits_since_force >= n,
        };
        if force {
            self.commits_since_force = 0;
            self.stats.policy_forces += 1;
            lat += self.dev.force(now + lat);
        }
        self.stats.commit_latency_cycles += lat;
        lat
    }

    /// Aborts `tx`: appends an abort record if the transaction ever wrote,
    /// voiding its undo/redo records for the scan's reconciliation.
    /// Write-behind normally; forced in WAL mode.
    pub fn abort_tx(&mut self, tx: TxId, now: Cycle) -> Cycle {
        self.undo_logged.remove(&tx);
        self.undo_sums.remove(&tx);
        if !self.wrote.remove(&tx) {
            return 0;
        }
        let rec = encode_record(LogRecordKind::Abort, tx, &[]);
        self.stats.abort_records += 1;
        let mut lat = self.append_retrying(&rec, now);
        if self.wal {
            // WAL mode: the abort voids the incarnation's word-undo records,
            // and a retry re-logs fresh pre-images under the same `TxId` —
            // recovery must never see the new records without the abort that
            // retired the old ones, so the void is forced like the records
            // it voids.
            self.stats.wal_forces += 1;
            lat += self.dev.force(now + lat);
        }
        lat
    }

    /// The crash-boundary device image.
    pub fn crash_image(&self, now: Cycle) -> ptm_mem::LogImage {
        self.dev.crash_image(now)
    }

    /// Transactions that committed read-only (no record by design).
    pub fn ro_committed(&self) -> &FastSet<TxId> {
        &self.ro_committed
    }

    /// Checksums of the undo payloads that are current (logged by the
    /// latest incarnation) per still-live transaction. Recovery verifies
    /// only matching undo records; earlier incarnations' pre-images are
    /// stale by design, not corruption.
    pub fn undo_checksums(&self) -> &FastMap<TxId, Vec<u64>> {
        &self.undo_sums
    }

    /// Appends one framed record, absorbing transient errors (exponential
    /// backoff) and stall windows (wait out the deadline). Returns the
    /// cycles the append cost. Bounded: panics past [`MAX_LOG_RETRIES`]
    /// attempts, which the device's fault bounds make unreachable.
    fn append_retrying(&mut self, record: &[u8], now: Cycle) -> Cycle {
        let mut lat: Cycle = 0;
        let mut attempts: u32 = 0;
        loop {
            attempts += 1;
            assert!(
                attempts <= MAX_LOG_RETRIES,
                "log append did not settle within {MAX_LOG_RETRIES} attempts — the device's \
                 transient/stall bounds guarantee this cannot happen"
            );
            match self.dev.append(record, now + lat) {
                Ok(wait) => {
                    self.stats.max_append_attempts = self.stats.max_append_attempts.max(attempts);
                    return lat + wait;
                }
                Err(LogAppendError::Transient) => {
                    let backoff = BACKOFF_BASE << (attempts - 1).min(6);
                    self.stats.log_retries += 1;
                    self.stats.backoff_cycles += backoff;
                    lat += backoff;
                }
                Err(LogAppendError::Stalled { until }) => {
                    let wait = until.saturating_sub(now + lat).max(1);
                    self.stats.throttle_events += 1;
                    self.stats.throttle_cycles += wait;
                    lat += wait;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_types::FrameId;

    #[test]
    fn record_round_trips_through_the_frame() {
        let payload = vec![1, 2, 3, 4, 5];
        let bytes = encode_record(LogRecordKind::Commit, TxId(42), &payload);
        let scan = scan_records(&bytes);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].kind, LogRecordKind::Commit);
        assert_eq!(scan.records[0].tx, TxId(42));
        assert_eq!(scan.records[0].payload, payload);
        assert_eq!(scan.valid_len, bytes.len());
        assert_eq!(scan.records_discarded, 0);
        assert_eq!(scan.checksum_mismatches, 0);
    }

    #[test]
    fn undo_payload_round_trips() {
        let p = UndoPayload {
            pid: ProcessId(3),
            vpn: Vpn(0x1234_5678),
            block: BlockIdx(17),
            data: [0xAB; BLOCK_SIZE],
        };
        assert_eq!(decode_undo_payload(&encode_undo_payload(&p)), Some(p));
        assert_eq!(decode_undo_payload(&[0; 5]), None);
    }

    #[test]
    fn torn_tail_is_discarded_with_counts_and_scan_is_bounded() {
        let mut bytes = Vec::new();
        for i in 0..5u64 {
            bytes.extend_from_slice(&encode_record(LogRecordKind::Redo, TxId(i), &[7; 10]));
        }
        let good = encode_record(LogRecordKind::Commit, TxId(9), &[1; 12]);
        // Record 6 is torn: only a prefix persisted, rest zero-filled, and a
        // perfectly valid record sits *behind* the tear.
        let torn_at = bytes.len();
        let mut torn = encode_record(LogRecordKind::Undo, TxId(5), &[9; 76]);
        let keep = torn.len() / 2;
        for b in &mut torn[keep..] {
            *b = 0;
        }
        bytes.extend_from_slice(&torn);
        bytes.extend_from_slice(&good);

        let scan = scan_records(&bytes);
        assert_eq!(scan.records.len(), 5, "scan stops at the tear — bounded");
        assert_eq!(scan.valid_len, torn_at);
        assert_eq!(scan.records_discarded, 1);
        assert_eq!(scan.checksum_mismatches, 1, "torn frame kept its header");
        assert_eq!(scan.bytes_discarded, (bytes.len() - torn_at) as u64);
    }

    #[test]
    fn clean_zero_tail_is_not_a_discard() {
        let mut bytes = encode_record(LogRecordKind::Abort, TxId(1), &[]);
        let len = bytes.len();
        bytes.extend_from_slice(&[0; 64]);
        let scan = scan_records(&bytes);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, len);
        assert_eq!(scan.records_discarded, 0);
        assert_eq!(scan.checksum_mismatches, 0);
        assert_eq!(scan.bytes_discarded, 64);
    }

    #[test]
    fn corrupt_byte_fails_the_checksum() {
        let mut bytes = encode_record(LogRecordKind::Commit, TxId(3), &[5; 8]);
        bytes[RECORD_HEADER + 2] ^= 0xFF;
        let scan = scan_records(&bytes);
        assert!(scan.records.is_empty());
        assert_eq!(scan.checksum_mismatches, 1);
        assert_eq!(scan.records_discarded, 1);
    }

    #[test]
    fn parse_force_policy_is_case_insensitive_and_hard_errors() {
        assert_eq!(parse_force_policy("EAGER"), Ok(ForcePolicy::Eager));
        assert_eq!(parse_force_policy("Lazy"), Ok(ForcePolicy::Lazy));
        assert_eq!(parse_force_policy("group"), Ok(ForcePolicy::Group(4)));
        assert_eq!(parse_force_policy("Group:9"), Ok(ForcePolicy::Group(9)));
        let err = parse_force_policy("eagre").unwrap_err();
        assert!(err.contains("eagre"), "error names the offender: {err}");
        assert!(parse_force_policy("group:0").is_err());
        assert!(parse_force_policy("group:x").is_err());
    }

    #[test]
    fn read_only_commits_skip_the_log() {
        let mut log = DurableLog::new(DurabilityConfig::zero_cost_eager());
        assert_eq!(log.commit_tx(TxId(1), 0, 100), 0);
        assert_eq!(log.stats().ro_fastpath_commits, 1);
        assert_eq!(log.stats().commit_records, 0);
        assert_eq!(log.dev_stats().appends, 0);
    }

    #[test]
    fn writing_commits_append_and_force_eagerly() {
        let mut log = DurableLog::new(DurabilityConfig::zero_cost_eager());
        log.note_tx_write(TxId(1));
        let block = PhysBlock::new(FrameId(0), BlockIdx(1));
        log.append_redo(TxId(1), block, &[(0, 7)], 50);
        assert_eq!(log.commit_tx(TxId(1), 0, 100), 0, "zero-cost device");
        assert_eq!(log.stats().commit_records, 1);
        assert_eq!(log.stats().redo_records, 1);
        assert_eq!(log.stats().policy_forces, 1);
        let img = log.crash_image(100);
        let scan = scan_records(&img.bytes);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].kind, LogRecordKind::Commit);
    }

    #[test]
    fn group_commit_forces_every_nth() {
        let mut log = DurableLog::new(DurabilityConfig {
            policy: ForcePolicy::Group(3),
            ..DurabilityConfig::zero_cost_eager()
        });
        for i in 0..7u64 {
            log.note_tx_write(TxId(i));
            log.commit_tx(TxId(i), 0, 10 * i);
        }
        assert_eq!(log.stats().policy_forces, 2, "forces at commits 3 and 6");
    }

    #[test]
    fn undo_records_are_deduplicated_per_tx_block() {
        let mut log = DurableLog::new(DurabilityConfig::zero_cost_eager());
        let block = PhysBlock::new(FrameId(4), BlockIdx(2));
        let p = UndoPayload {
            pid: ProcessId(0),
            vpn: Vpn(9),
            block: BlockIdx(2),
            data: [1; BLOCK_SIZE],
        };
        log.note_tx_write(TxId(8));
        log.append_undo(TxId(8), block, p.clone(), 0);
        log.append_undo(TxId(8), block, p, 0);
        assert_eq!(log.stats().undo_records, 1);
    }

    #[test]
    fn word_undo_payload_round_trips() {
        let bytes = encode_word_undo_payload(PhysAddr(0xDEAD_BEEF_0123), 42);
        assert_eq!(
            decode_word_undo_payload(&bytes),
            Some((PhysAddr(0xDEAD_BEEF_0123), 42))
        );
        assert_eq!(decode_word_undo_payload(&bytes[..7]), None);
    }

    #[test]
    fn wal_mode_forces_word_undo_and_abort_appends() {
        let mut log = DurableLog::new(DurabilityConfig {
            policy: ForcePolicy::Lazy,
            ..DurabilityConfig::zero_cost_eager()
        });
        log.set_wal(true);
        log.note_tx_write(TxId(1));
        log.append_word_undo(TxId(1), PhysAddr(64), 7, 10);
        log.append_word_undo(TxId(1), PhysAddr(68), 9, 20);
        log.abort_tx(TxId(1), 30);
        assert_eq!(log.stats().word_undo_records, 2);
        assert_eq!(log.stats().abort_records, 1);
        assert_eq!(log.stats().wal_forces, 3, "every WAL append forces");
        assert_eq!(log.stats().policy_forces, 0, "lazy policy never forces");
        let scan = scan_records(&log.crash_image(30).bytes);
        assert_eq!(
            scan.records.iter().map(|r| r.kind).collect::<Vec<_>>(),
            vec![
                LogRecordKind::WordUndo,
                LogRecordKind::WordUndo,
                LogRecordKind::Abort
            ]
        );
    }

    #[test]
    fn transients_are_absorbed_with_bounded_backoff() {
        let faults = LogFaultPlan {
            transient_pct: 100,
            stall_pct: 0,
            ..LogFaultPlan::from_seed(21)
        };
        let mut log = DurableLog::new(DurabilityConfig {
            policy: ForcePolicy::Eager,
            dev: LogDevConfig::zero_cost(),
            faults,
        });
        log.note_tx_write(TxId(1));
        let lat = log.commit_tx(TxId(1), 0, 1_000);
        assert!(lat > 0, "backoff cycles were charged");
        assert!(log.stats().log_retries > 0);
        assert!(log.stats().max_append_attempts <= MAX_LOG_RETRIES);
        assert_eq!(log.stats().commit_records, 1, "the record landed");
    }
}
