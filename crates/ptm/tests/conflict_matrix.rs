//! The full conflict matrix of §4.3, enumerated: {read, write} requester ×
//! {read-overflowed, write-overflowed, both} prior state × {transactional,
//! non-transactional} requester × both policies.

use ptm_cache::{BusTimings, SystemBus, TxLineMeta};
use ptm_core::system::AccessKind;
use ptm_core::{PtmConfig, PtmSystem};
use ptm_mem::{PhysicalMemory, SpecBlock, SwapStore};
use ptm_types::{BlockIdx, FrameId, PhysBlock, TxId, WordIdx, WordMask, BLOCK_SIZE};

#[derive(Debug, Clone, Copy, PartialEq)]
enum Prior {
    Read,
    Write,
    ReadAndWrite,
}

fn setup(cfg: PtmConfig, prior: Prior, owner: TxId) -> (PtmSystem, PhysicalMemory, SystemBus) {
    let mut mem = PhysicalMemory::new(16);
    let mut ptm = PtmSystem::new(cfg);
    let f = mem.alloc().unwrap();
    ptm.on_page_alloc(f);
    let mut bus = SystemBus::new(BusTimings::default());
    ptm.begin(owner, None);

    let mut meta = TxLineMeta::new(owner);
    let mut spec = None;
    match prior {
        Prior::Read => meta.record_read(WordIdx(0)),
        Prior::Write => meta.record_write(WordIdx(0)),
        Prior::ReadAndWrite => {
            meta.record_read(WordIdx(0));
            meta.record_write(WordIdx(0));
        }
    }
    if meta.write {
        let mut written = WordMask::EMPTY;
        written.set(WordIdx(0));
        spec = Some(SpecBlock {
            data: [1u8; BLOCK_SIZE],
            written,
        });
    }
    ptm.on_tx_eviction(&meta, block(), spec.as_ref(), false, &mut mem, 0, &mut bus)
        .unwrap();
    (ptm, mem, bus)
}

fn block() -> PhysBlock {
    PhysBlock::new(FrameId(0), BlockIdx(2))
}

#[test]
fn conflict_matrix_matches_section_4_3() {
    // (prior state, access kind) -> conflict expected with a DIFFERENT tx.
    let cases = [
        (Prior::Read, AccessKind::Read, false),         // R/R: never
        (Prior::Read, AccessKind::Write, true),         // WAR
        (Prior::Write, AccessKind::Read, true),         // RAW
        (Prior::Write, AccessKind::Write, true),        // WAW
        (Prior::ReadAndWrite, AccessKind::Read, true),  // RAW
        (Prior::ReadAndWrite, AccessKind::Write, true), // WAR+WAW
    ];
    for cfg in [PtmConfig::select(), PtmConfig::copy()] {
        for (prior, kind, expect) in cases {
            let owner = TxId(0);
            let (mut ptm, mut mem, mut bus) = setup(cfg, prior, owner);
            // Different transaction:
            let out = ptm.check_conflict(Some(TxId(1)), block(), WordIdx(0), kind, 100, &mut bus);
            assert_eq!(
                !out.conflicts.is_empty(),
                expect,
                "{:?} prior={prior:?} kind={kind:?}",
                cfg.policy
            );
            if expect {
                assert_eq!(out.conflicts, vec![owner]);
            }
            // The owner itself never conflicts:
            let own = ptm.check_conflict(Some(owner), block(), WordIdx(0), kind, 100, &mut bus);
            assert!(
                own.conflicts.is_empty(),
                "owner self-conflicted: {prior:?} {kind:?}"
            );
            // Non-transactional requester sees the same conflicts:
            let nontx = ptm.check_conflict(None, block(), WordIdx(0), kind, 100, &mut bus);
            assert_eq!(
                !nontx.conflicts.is_empty(),
                expect,
                "non-tx prior={prior:?} kind={kind:?}"
            );
            ptm.abort(owner, &mut mem, &mut SwapStore::new(), 200, &mut bus);
        }
    }
}

#[test]
fn exclusivity_denied_only_for_foreign_reads() {
    let (mut ptm, mut mem, mut bus) = setup(PtmConfig::select(), Prior::Read, TxId(0));
    let other = ptm.check_conflict(
        Some(TxId(1)),
        block(),
        WordIdx(0),
        AccessKind::Read,
        50,
        &mut bus,
    );
    assert!(other.deny_exclusive, "foreign read overflow denies E");
    let own = ptm.check_conflict(
        Some(TxId(0)),
        block(),
        WordIdx(0),
        AccessKind::Read,
        50,
        &mut bus,
    );
    assert!(!own.deny_exclusive, "own overflow does not");
    ptm.commit(TxId(0), &mut mem, &mut SwapStore::new(), 100, &mut bus);
    let after = ptm.check_conflict(
        Some(TxId(1)),
        block(),
        WordIdx(0),
        AccessKind::Read,
        5_000,
        &mut bus,
    );
    assert!(!after.deny_exclusive, "cleared with the TAVs");
}

#[test]
fn multiple_readers_all_reported_to_a_writer() {
    let mut mem = PhysicalMemory::new(16);
    let mut ptm = PtmSystem::new(PtmConfig::select());
    let f = mem.alloc().unwrap();
    ptm.on_page_alloc(f);
    let mut bus = SystemBus::new(BusTimings::default());
    for t in 0..3u64 {
        let tx = TxId(t);
        ptm.begin(tx, None);
        let mut meta = TxLineMeta::new(tx);
        meta.record_read(WordIdx(0));
        ptm.on_tx_eviction(&meta, block(), None, false, &mut mem, 0, &mut bus)
            .unwrap();
    }
    let out = ptm.check_conflict(
        Some(TxId(9)),
        block(),
        WordIdx(0),
        AccessKind::Write,
        100,
        &mut bus,
    );
    assert_eq!(
        out.conflicts,
        vec![TxId(0), TxId(1), TxId(2)],
        "every reader reported"
    );
}

#[test]
fn committed_and_aborted_transactions_never_conflict() {
    for finish_with_commit in [true, false] {
        let (mut ptm, mut mem, mut bus) = setup(PtmConfig::select(), Prior::Write, TxId(0));
        if finish_with_commit {
            ptm.commit(TxId(0), &mut mem, &mut SwapStore::new(), 100, &mut bus);
        } else {
            ptm.abort(TxId(0), &mut mem, &mut SwapStore::new(), 100, &mut bus);
        }
        // Past the cleanup window, nothing conflicts.
        let out = ptm.check_conflict(
            Some(TxId(1)),
            block(),
            WordIdx(0),
            AccessKind::Write,
            50_000,
            &mut bus,
        );
        assert!(out.conflicts.is_empty());
        assert!(!ptm.has_overflows());
    }
}

#[test]
fn conflicts_are_per_block_not_per_page() {
    let (mut ptm, mut mem, mut bus) = setup(PtmConfig::select(), Prior::Write, TxId(0));
    for idx in [0u8, 1, 3, 63] {
        let other = PhysBlock::new(FrameId(0), BlockIdx(idx));
        let out = ptm.check_conflict(
            Some(TxId(1)),
            other,
            WordIdx(0),
            AccessKind::Write,
            50,
            &mut bus,
        );
        assert!(
            out.conflicts.is_empty(),
            "block {idx} shares only the page, never the conflict"
        );
    }
    ptm.commit(TxId(0), &mut mem, &mut SwapStore::new(), 100, &mut bus);
}
