//! Property test for the per-page conflict summary vectors: across random
//! sequences of overflow inserts (read and write), commits, aborts, and
//! swap-out/swap-in cycles, every SPT entry's `sum_read`/`sum_write` must
//! stay exactly equal to the union of the read/write vectors over the
//! page's live horizontal TAV list — the invariant the O(1) conflict
//! pre-filter relies on.

use proptest::prelude::*;
use ptm_cache::{BusTimings, SystemBus, TxLineMeta};
use ptm_core::{PtmConfig, PtmSystem};
use ptm_mem::{PhysicalMemory, SpecBlock, SwapStore};
use ptm_types::{BlockIdx, FrameId, Granularity, PhysBlock, WordIdx, WordMask, BLOCK_SIZE};

const PAGES: usize = 2;
const TXS: u8 = 3;

#[derive(Debug, Clone)]
enum Event {
    /// Transaction `t` overflows an access to block `b` of page `p`;
    /// `write` selects a dirty (write) vs clean (read) overflow.
    Overflow { t: u8, p: u8, b: u8, write: bool },
    /// Transaction `t` commits.
    Commit { t: u8 },
    /// Transaction `t` aborts (and will not return).
    Abort { t: u8 },
    /// Page `p` is swapped out and immediately back in.
    SwapCycle { p: u8 },
}

fn event() -> impl Strategy<Value = Event> {
    prop_oneof![
        5 => (0u8..TXS, 0u8..PAGES as u8, 0u8..8, any::<bool>())
            .prop_map(|(t, p, b, write)| Event::Overflow { t, p, b, write }),
        2 => (0u8..TXS).prop_map(|t| Event::Commit { t }),
        1 => (0u8..TXS).prop_map(|t| Event::Abort { t }),
        2 => (0u8..PAGES as u8).prop_map(|p| Event::SwapCycle { p }),
    ]
}

fn configs() -> Vec<PtmConfig> {
    vec![
        PtmConfig::copy(),
        PtmConfig::select(),
        PtmConfig::select_with_granularity(Granularity::WordCacheMem),
    ]
}

/// Asserts the summary invariant for one resident page.
fn assert_summaries(ptm: &PtmSystem, frame: FrameId, ctx: &str) {
    let Some(entry) = ptm.spt_entry(frame) else {
        return;
    };
    let (union_read, union_write) = ptm.tav_arena().block_summaries(entry.tav_head);
    let (sum_read, sum_write) = ptm.spt_summaries(frame);
    assert_eq!(
        sum_read, union_read,
        "{ctx}: read summary diverged from TAV union on {frame}"
    );
    assert_eq!(
        sum_write, union_write,
        "{ctx}: write summary diverged from TAV union on {frame}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn summary_vectors_equal_tav_union(events in prop::collection::vec(event(), 1..80)) {
        for cfg in configs() {
            let mut ptm = PtmSystem::new(cfg);
            let mut mem = PhysicalMemory::new(64);
            let mut swap = SwapStore::new();
            let mut bus = SystemBus::new(BusTimings::default());

            let mut frames: Vec<FrameId> = (0..PAGES).map(|_| mem.alloc().unwrap()).collect();
            for f in &frames {
                ptm.on_page_alloc(*f);
            }

            let mut live = [false; TXS as usize];
            let mut dead = [false; TXS as usize];
            let mut ids = [ptm_types::TxId(0); TXS as usize];
            let mut next_id = 0u64;
            let mut now = 0u64;

            for e in &events {
                now += 100;
                match *e {
                    Event::Overflow { t, p, b, write } => {
                        let ti = t as usize;
                        if dead[ti] {
                            continue;
                        }
                        if !live[ti] {
                            ids[ti] = ptm_types::TxId(next_id);
                            next_id += 1;
                            ptm.begin(ids[ti], None);
                            live[ti] = true;
                        }
                        // Keep writers word-disjoint (word = tx index) so the
                        // sequence never violates what conflict detection
                        // would forbid; the invariant itself is granularity-
                        // agnostic.
                        let word = WordIdx(t * 4);
                        let frame = frames[p as usize];
                        let mut meta = TxLineMeta::new(ids[ti]);
                        let spec;
                        let spec_ref = if write {
                            meta.record_write(word);
                            let mut written = WordMask::EMPTY;
                            written.set(word);
                            spec = SpecBlock { data: [0u8; BLOCK_SIZE], written };
                            Some(&spec)
                        } else {
                            meta.record_read(word);
                            None
                        };
                        ptm.on_tx_eviction(
                            &meta,
                            PhysBlock::new(frame, BlockIdx(b)),
                            spec_ref,
                            false,
                            &mut mem,
                            now,
                            &mut bus,
                        ).unwrap();
                    }
                    Event::Commit { t } => {
                        let ti = t as usize;
                        if live[ti] {
                            ptm.commit(ids[ti], &mut mem, &mut swap, now, &mut bus);
                            live[ti] = false;
                        }
                    }
                    Event::Abort { t } => {
                        let ti = t as usize;
                        if live[ti] {
                            ptm.abort(ids[ti], &mut mem, &mut swap, now, &mut bus);
                            live[ti] = false;
                            dead[ti] = true;
                        }
                    }
                    Event::SwapCycle { p } => {
                        let pi = p as usize;
                        let out = ptm.on_swap_out(frames[pi], &mut mem, &mut swap);
                        frames[pi] = ptm.on_swap_in(out.home_slot, &mut mem, &mut swap).unwrap();
                    }
                }
                for f in &frames {
                    assert_summaries(&ptm, *f, &format!("after {e:?}"));
                }
            }

            // Drain remaining transactions and re-check.
            for ti in 0..TXS as usize {
                if live[ti] {
                    ptm.commit(ids[ti], &mut mem, &mut swap, now + 1_000, &mut bus);
                }
            }
            for f in &frames {
                assert_summaries(&ptm, *f, "after final drain");
                // With no live transactions, summaries must be empty again.
                if let Some(entry) = ptm.spt_entry(*f) {
                    prop_assert!(entry.tav_head.is_none(), "all TAV nodes freed");
                    let (sum_read, sum_write) = ptm.spt_summaries(*f);
                    prop_assert!(sum_read.is_empty() && sum_write.is_empty());
                }
            }
        }
    }
}
