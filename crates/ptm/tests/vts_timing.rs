//! VTS timing behaviour: cache pressure forcing hardware walks, lazy
//! cleanup windows, and the relative costs of the paper's operations.

use ptm_cache::{BusTimings, SystemBus, TxLineMeta};
use ptm_core::system::AccessKind;
use ptm_core::{PtmConfig, PtmSystem};
use ptm_mem::{PhysicalMemory, SpecBlock, SwapStore};
use ptm_types::{BlockIdx, FrameId, PhysBlock, TxId, WordIdx, WordMask, BLOCK_SIZE};

fn bus() -> SystemBus {
    SystemBus::new(BusTimings::default())
}

fn spec(value: u32) -> SpecBlock {
    let mut data = [0u8; BLOCK_SIZE];
    data[..4].copy_from_slice(&value.to_le_bytes());
    let mut written = WordMask::EMPTY;
    written.set(WordIdx(0));
    SpecBlock { data, written }
}

fn dirty(tx: TxId) -> TxLineMeta {
    let mut m = TxLineMeta::new(tx);
    m.record_write(WordIdx(0));
    m
}

#[test]
fn tiny_spt_cache_forces_table_walks() {
    // 2-entry SPT cache + overflows on 8 pages: conflict checks on evicted
    // pages must re-walk the shadow page table.
    let cfg = PtmConfig {
        spt_cache_entries: 2,
        tav_cache_entries: 2,
        ..PtmConfig::select()
    };
    let mut ptm = PtmSystem::new(cfg);
    let mut mem = PhysicalMemory::new(64);
    let frames: Vec<FrameId> = (0..8).map(|_| mem.alloc().unwrap()).collect();
    for &f in &frames {
        ptm.on_page_alloc(f);
    }
    let tx = TxId(0);
    ptm.begin(tx, None);
    let mut b = bus();
    for &f in &frames {
        ptm.on_tx_eviction(
            &dirty(tx),
            PhysBlock::new(f, BlockIdx(0)),
            Some(&spec(1)),
            false,
            &mut mem,
            0,
            &mut b,
        )
        .unwrap();
    }
    // Sweep conflict checks over all 8 pages twice: the 2-entry caches
    // cannot hold them, so misses (and walks) accumulate.
    for _ in 0..2 {
        for &f in &frames {
            let _ = ptm.check_conflict(
                Some(TxId(1)),
                PhysBlock::new(f, BlockIdx(0)),
                WordIdx(0),
                AccessKind::Read,
                100,
                &mut b,
            );
        }
    }
    let s = ptm.stats();
    assert!(
        s.spt_cache_misses > 8,
        "SPT cache thrash: {}",
        s.spt_cache_misses
    );
    assert!(
        s.tav_walk_nodes > 0,
        "misses rebuilt summaries by walking TAVs"
    );
    ptm.commit(tx, &mut mem, &mut SwapStore::new(), 1_000, &mut b);
}

#[test]
fn conflict_check_is_cheap_on_cache_hits() {
    let mut ptm = PtmSystem::new(PtmConfig::select());
    let mut mem = PhysicalMemory::new(16);
    let f = mem.alloc().unwrap();
    ptm.on_page_alloc(f);
    let tx = TxId(0);
    ptm.begin(tx, None);
    let mut b = bus();
    let block = PhysBlock::new(f, BlockIdx(0));
    ptm.on_tx_eviction(
        &dirty(tx),
        block,
        Some(&spec(1)),
        false,
        &mut mem,
        0,
        &mut b,
    )
    .unwrap();

    // First check warms the caches; the second must complete in lookup time
    // (no memory accesses).
    let mem_before = b.stats().mem_accesses;
    let _ = ptm.check_conflict(
        Some(TxId(1)),
        block,
        WordIdx(0),
        AccessKind::Read,
        1_000,
        &mut b,
    );
    let out = ptm.check_conflict(
        Some(TxId(1)),
        block,
        WordIdx(0),
        AccessKind::Read,
        2_000,
        &mut b,
    );
    assert_eq!(
        b.stats().mem_accesses,
        mem_before,
        "hot checks never touch memory"
    );
    assert!(out.done_at - 2_000 <= 2 * ptm.config().vts_lookup_latency);
    ptm.commit(tx, &mut mem, &mut SwapStore::new(), 3_000, &mut b);
}

#[test]
fn select_commit_cleanup_grows_with_overflowed_pages() {
    // More overflowed pages → longer lazy cleanup chains.
    let mut cleanup_costs = Vec::new();
    for pages in [1usize, 4, 12] {
        let mut ptm = PtmSystem::new(PtmConfig::select());
        let mut mem = PhysicalMemory::new(64);
        let frames: Vec<FrameId> = (0..pages).map(|_| mem.alloc().unwrap()).collect();
        for &f in &frames {
            ptm.on_page_alloc(f);
        }
        let tx = TxId(0);
        ptm.begin(tx, None);
        let mut b = bus();
        for &f in &frames {
            ptm.on_tx_eviction(
                &dirty(tx),
                PhysBlock::new(f, BlockIdx(0)),
                Some(&spec(1)),
                false,
                &mut mem,
                0,
                &mut b,
            )
            .unwrap();
        }
        let done = ptm.commit(tx, &mut mem, &mut SwapStore::new(), 10_000, &mut b);
        cleanup_costs.push(done - 10_000);
    }
    assert!(
        cleanup_costs[0] <= cleanup_costs[1] && cleanup_costs[1] < cleanup_costs[2],
        "cleanup must scale with pages: {cleanup_costs:?}"
    );
}

#[test]
fn copy_abort_costs_more_than_select_abort() {
    // The paper's central asymmetry, measured at the system level.
    let mut costs = Vec::new();
    for cfg in [PtmConfig::copy(), PtmConfig::select()] {
        let mut ptm = PtmSystem::new(cfg);
        let mut mem = PhysicalMemory::new(64);
        let frames: Vec<FrameId> = (0..8).map(|_| mem.alloc().unwrap()).collect();
        for &f in &frames {
            ptm.on_page_alloc(f);
        }
        let tx = TxId(0);
        ptm.begin(tx, None);
        let mut b = bus();
        for &f in &frames {
            for idx in 0..4u8 {
                ptm.on_tx_eviction(
                    &dirty(tx),
                    PhysBlock::new(f, BlockIdx(idx)),
                    Some(&spec(1)),
                    false,
                    &mut mem,
                    0,
                    &mut b,
                )
                .unwrap();
            }
        }
        let done = ptm.abort(tx, &mut mem, &mut SwapStore::new(), 100_000, &mut b);
        costs.push(done - 100_000);
    }
    assert!(
        costs[0] > 2 * costs[1],
        "Copy-PTM abort ({}) must dwarf Select-PTM abort ({})",
        costs[0],
        costs[1]
    );
}

#[test]
fn cleanup_windows_expire() {
    let mut ptm = PtmSystem::new(PtmConfig::select());
    let mut mem = PhysicalMemory::new(16);
    let f = mem.alloc().unwrap();
    ptm.on_page_alloc(f);
    let tx = TxId(0);
    ptm.begin(tx, None);
    let mut b = bus();
    let block = PhysBlock::new(f, BlockIdx(0));
    ptm.on_tx_eviction(
        &dirty(tx),
        block,
        Some(&spec(1)),
        false,
        &mut mem,
        0,
        &mut b,
    )
    .unwrap();
    let done = ptm.commit(tx, &mut mem, &mut SwapStore::new(), 1_000, &mut b);

    let stalled = ptm.check_conflict(
        Some(TxId(1)),
        block,
        WordIdx(0),
        AccessKind::Read,
        1_001,
        &mut b,
    );
    assert!(stalled.stall_until.is_some());
    let clear = ptm.check_conflict(
        Some(TxId(1)),
        block,
        WordIdx(0),
        AccessKind::Read,
        done + 1,
        &mut b,
    );
    assert!(clear.stall_until.is_none(), "window expired");
    assert!(
        clear.conflicts.is_empty(),
        "committed state no longer conflicts"
    );
}
