//! Paging-focused tests (§3.5): repeated swap cycles, home+shadow
//! co-swapping, merge-on-swap, Copy-PTM state across migration, and the
//! lazy-migrate drain loop.

use ptm_cache::{BusTimings, SystemBus, TxLineMeta};
use ptm_core::system::AccessKind;
use ptm_core::{PtmConfig, PtmSystem, ShadowFreePolicy};
use ptm_mem::{PhysicalMemory, SpecBlock, SwapStore};
use ptm_types::{BlockIdx, FrameId, PhysBlock, TxId, WordIdx, WordMask, BLOCK_SIZE};

fn bus() -> SystemBus {
    SystemBus::new(BusTimings::default())
}

fn setup(cfg: PtmConfig) -> (PtmSystem, PhysicalMemory, SwapStore, SystemBus) {
    let mut mem = PhysicalMemory::new(64);
    let mut ptm = PtmSystem::new(cfg);
    for _ in 0..4 {
        let f = mem.alloc().unwrap();
        ptm.on_page_alloc(f);
    }
    (ptm, mem, SwapStore::new(), bus())
}

fn spec(word: u8, value: u32) -> SpecBlock {
    let mut data = [0u8; BLOCK_SIZE];
    data[word as usize * 4..word as usize * 4 + 4].copy_from_slice(&value.to_le_bytes());
    let mut written = WordMask::EMPTY;
    written.set(WordIdx(word));
    SpecBlock { data, written }
}

fn dirty(tx: TxId) -> TxLineMeta {
    let mut m = TxLineMeta::new(tx);
    m.record_write(WordIdx(0));
    m
}

#[test]
fn repeated_swap_cycles_preserve_all_state() {
    let (mut ptm, mut mem, mut swap, mut b) = setup(PtmConfig::select());
    let tx = TxId(0);
    ptm.begin(tx, None);
    let block = PhysBlock::new(FrameId(0), BlockIdx(7));
    mem.write_word(block.addr(), 111);
    ptm.on_tx_eviction(
        &dirty(tx),
        block,
        Some(&spec(0, 222)),
        false,
        &mut mem,
        0,
        &mut b,
    )
    .unwrap();

    // Three full swap-out/swap-in cycles while the transaction lives.
    let mut home = FrameId(0);
    for round in 0..3 {
        let out = ptm.on_swap_out(home, &mut mem, &mut swap);
        assert_eq!(swap.used(), 2, "round {round}: home and shadow co-swapped");
        home = ptm.on_swap_in(out.home_slot, &mut mem, &mut swap).unwrap();
        assert_eq!(swap.used(), 0);
    }
    let nb = PhysBlock::new(home, BlockIdx(7));
    assert_eq!(mem.read_word(nb.addr()), 111, "committed survived 3 cycles");
    let shadow = ptm.spt_entry(home).unwrap().shadow.unwrap();
    assert_eq!(
        mem.read_word(nb.on_frame(shadow).addr()),
        222,
        "speculative survived"
    );

    // Conflict detection still targets the latest frame.
    let out = ptm.check_conflict(Some(TxId(1)), nb, WordIdx(0), AccessKind::Read, 10, &mut b);
    assert_eq!(out.conflicts, vec![tx]);

    // Commit completes against the migrated page.
    ptm.commit(tx, &mut mem, &mut swap, 20, &mut b);
    assert_eq!(ptm.committed_frame(nb), shadow);
    assert_eq!(ptm.stats().tx_swap_outs, 3);
    assert_eq!(ptm.stats().tx_swap_ins, 3);
}

#[test]
fn copy_ptm_swap_preserves_backup_for_abort() {
    let (mut ptm, mut mem, mut swap, mut b) = setup(PtmConfig::copy());
    let tx = TxId(0);
    ptm.begin(tx, None);
    let block = PhysBlock::new(FrameId(0), BlockIdx(3));
    mem.write_word(block.addr(), 10);
    ptm.on_tx_eviction(
        &dirty(tx),
        block,
        Some(&spec(0, 77)),
        false,
        &mut mem,
        0,
        &mut b,
    )
    .unwrap();
    assert_eq!(mem.read_word(block.addr()), 77, "home holds speculative");

    let out = ptm.on_swap_out(FrameId(0), &mut mem, &mut swap);
    let home = ptm.on_swap_in(out.home_slot, &mut mem, &mut swap).unwrap();

    // Abort after migration: restore must come from the co-swapped backup.
    ptm.abort(tx, &mut mem, &mut swap, 50, &mut b);
    let nb = PhysBlock::new(home, BlockIdx(3));
    assert_eq!(
        mem.read_word(nb.addr()),
        10,
        "backup restored on the new frame"
    );
}

#[test]
fn swap_out_of_clean_page_keeps_no_shadow() {
    let (mut ptm, mut mem, mut swap, _b) = setup(PtmConfig::select());
    // Never touched transactionally: plain page, single slot.
    let out = ptm.on_swap_out(FrameId(1), &mut mem, &mut swap);
    assert_eq!(swap.used(), 1);
    let home = ptm.on_swap_in(out.home_slot, &mut mem, &mut swap).unwrap();
    let entry = ptm.spt_entry(home).unwrap();
    assert!(entry.shadow.is_none());
    assert!(entry.tav_head.is_none());
    assert_eq!(ptm.stats().tx_swap_outs, 0, "not counted as transactional");
}

#[test]
fn merge_on_swap_respects_live_transactions() {
    // A live transaction's page must NOT be merged at swap time: the shadow
    // still holds needed state.
    let (mut ptm, mut mem, mut swap, mut b) = setup(PtmConfig::select());
    let tx = TxId(0);
    ptm.begin(tx, None);
    let block = PhysBlock::new(FrameId(0), BlockIdx(3));
    ptm.on_tx_eviction(
        &dirty(tx),
        block,
        Some(&spec(0, 9)),
        false,
        &mut mem,
        0,
        &mut b,
    )
    .unwrap();

    let out = ptm.on_swap_out(FrameId(0), &mut mem, &mut swap);
    assert_eq!(swap.used(), 2, "live TAV list blocks the merge");
    let home = ptm.on_swap_in(out.home_slot, &mut mem, &mut swap).unwrap();
    assert!(ptm.spt_entry(home).unwrap().shadow.is_some());
    ptm.commit(tx, &mut mem, &mut swap, 10, &mut b);
}

#[test]
fn contested_vector_survives_the_swap() {
    let cfg = PtmConfig::select_with_granularity(ptm_types::Granularity::WordCacheMem);
    let (mut ptm, mut mem, mut swap, mut b) = setup(cfg);
    let block = PhysBlock::new(FrameId(0), BlockIdx(5));
    ptm.begin(TxId(0), None);
    ptm.mark_contested(block);
    assert!(ptm.is_contested(block));
    ptm.on_tx_eviction(
        &dirty(TxId(0)),
        block,
        Some(&spec(0, 1)),
        false,
        &mut mem,
        0,
        &mut b,
    )
    .unwrap();

    let out = ptm.on_swap_out(FrameId(0), &mut mem, &mut swap);
    let home = ptm.on_swap_in(out.home_slot, &mut mem, &mut swap).unwrap();
    assert!(
        ptm.is_contested(PhysBlock::new(home, BlockIdx(5))),
        "contested bit migrated with the page"
    );
    ptm.commit(TxId(0), &mut mem, &mut swap, 10, &mut b);
}

#[test]
fn lazy_migrate_drains_a_whole_page() {
    let cfg = PtmConfig {
        shadow_free: ShadowFreePolicy::LazyMigrate,
        ..PtmConfig::select()
    };
    let (mut ptm, mut mem, _swap, mut b) = setup(cfg);
    // Commit transactional writes to several blocks of page 0.
    for (i, idx) in [3u8, 9, 20, 41].iter().enumerate() {
        let tx = TxId(i as u64);
        ptm.begin(tx, None);
        let block = PhysBlock::new(FrameId(0), BlockIdx(*idx));
        ptm.on_tx_eviction(
            &dirty(tx),
            block,
            Some(&spec(0, 100 + i as u32)),
            false,
            &mut mem,
            0,
            &mut b,
        )
        .unwrap();
        ptm.commit(
            tx,
            &mut mem,
            &mut SwapStore::new(),
            (i as u64 + 1) * 100,
            &mut b,
        );
    }
    let entry = ptm.spt_entry(FrameId(0)).unwrap();
    assert_eq!(entry.sel.count(), 4, "four blocks committed in the shadow");
    assert!(entry.shadow.is_some());

    // Drain them one by one via non-transactional write-backs.
    for (i, idx) in [3u8, 9, 20, 41].iter().enumerate() {
        let block = PhysBlock::new(FrameId(0), BlockIdx(*idx));
        ptm.on_nontx_dirty_writeback(block, &mut mem);
        let entry = ptm.spt_entry(FrameId(0)).unwrap();
        assert_eq!(entry.sel.count() as usize, 3 - i);
        assert_eq!(
            mem.read_word(block.addr()),
            100 + i as u32,
            "committed value migrated home"
        );
    }
    assert!(
        ptm.spt_entry(FrameId(0)).unwrap().shadow.is_none(),
        "empty shadow reclaimed after the last migration"
    );
    assert_eq!(ptm.stats().lazy_migrations, 4);
    assert_eq!(ptm.stats().shadow_frees, 1);
}

#[test]
fn shadow_reuse_after_free_allocates_fresh() {
    let (mut ptm, mut mem, _swap, mut b) = setup(PtmConfig::select());
    let block = PhysBlock::new(FrameId(0), BlockIdx(3));
    // Generation 1: overflow + abort frees the shadow.
    ptm.begin(TxId(0), None);
    ptm.on_tx_eviction(
        &dirty(TxId(0)),
        block,
        Some(&spec(0, 5)),
        false,
        &mut mem,
        0,
        &mut b,
    )
    .unwrap();
    ptm.abort(TxId(0), &mut mem, &mut SwapStore::new(), 10, &mut b);
    assert_eq!(ptm.stats().shadow_frees, 1);
    assert!(ptm.spt_entry(FrameId(0)).unwrap().shadow.is_none());

    // Generation 2: a fresh overflow re-allocates.
    ptm.begin(TxId(1), None);
    ptm.on_tx_eviction(
        &dirty(TxId(1)),
        block,
        Some(&spec(0, 6)),
        false,
        &mut mem,
        20,
        &mut b,
    )
    .unwrap();
    assert_eq!(ptm.stats().shadow_allocs, 2);
    ptm.commit(TxId(1), &mut mem, &mut SwapStore::new(), 30, &mut b);
    let committed = ptm.committed_frame(block);
    assert_eq!(mem.read_word(block.on_frame(committed).addr()), 6);
}

// ---------------------------------------------------------------------
// Lazy cleanup of swapped pages (§3.5.1): a transaction that commits or
// aborts while its page sits in swap completes against the SIT and the
// swap images in place — no swap-in.
// ---------------------------------------------------------------------

#[test]
fn select_commit_while_swapped_cleans_up_in_place() {
    let (mut ptm, mut mem, mut swap, mut b) = setup(PtmConfig::select());
    let tx = TxId(0);
    ptm.begin(tx, None);
    let block = PhysBlock::new(FrameId(0), BlockIdx(7));
    mem.write_word(block.addr(), 111);
    ptm.on_tx_eviction(
        &dirty(tx),
        block,
        Some(&spec(0, 222)),
        false,
        &mut mem,
        0,
        &mut b,
    )
    .unwrap();

    let out = ptm.on_swap_out(FrameId(0), &mut mem, &mut swap);
    assert_eq!(swap.used(), 2, "home and shadow co-swapped");

    // While swapped, the page's TAV node must not reference the (freed,
    // reusable) home frame any more.
    let sit = ptm.sit_entry(out.home_slot).unwrap();
    let node = sit.tav_head.unwrap();
    assert_ne!(
        ptm.tav_arena().page_of(node),
        FrameId(0),
        "node repointed off the dead frame"
    );

    // Commit without swapping in: selection toggles in the SIT, the TAV
    // node is freed, and the now-dead shadow image is folded into the home
    // image and discarded.
    ptm.commit(tx, &mut mem, &mut swap, 50, &mut b);
    assert_eq!(ptm.tav_arena().live(), 0, "TAV freed in place");
    let sit = ptm.sit_entry(out.home_slot).unwrap();
    assert!(sit.tav_head.is_none());
    assert!(sit.shadow_slot.is_none(), "shadow slot reclaimed");
    assert_eq!(swap.used(), 1, "only the home image remains");

    // Swap back in: the committed value lives on the (merged) home page.
    let home = ptm.on_swap_in(out.home_slot, &mut mem, &mut swap).unwrap();
    let nb = PhysBlock::new(home, BlockIdx(7));
    assert_eq!(mem.read_word(nb.addr()), 222, "committed value merged home");
    let entry = ptm.spt_entry(home).unwrap();
    assert!(entry.shadow.is_none());
    assert!(entry.sel.is_empty());
}

#[test]
fn copy_abort_while_swapped_restores_the_home_image() {
    let (mut ptm, mut mem, mut swap, mut b) = setup(PtmConfig::copy());
    let tx = TxId(0);
    ptm.begin(tx, None);
    let block = PhysBlock::new(FrameId(0), BlockIdx(3));
    mem.write_word(block.addr(), 10);
    ptm.on_tx_eviction(
        &dirty(tx),
        block,
        Some(&spec(0, 77)),
        false,
        &mut mem,
        0,
        &mut b,
    )
    .unwrap();
    assert_eq!(mem.read_word(block.addr()), 77, "home holds speculative");

    let out = ptm.on_swap_out(FrameId(0), &mut mem, &mut swap);

    // Abort without swapping in: the backup block is copied shadow-image →
    // home-image inside the swap store.
    ptm.abort(tx, &mut mem, &mut swap, 50, &mut b);
    let sit = ptm.sit_entry(out.home_slot).unwrap();
    assert!(sit.tav_head.is_none());
    assert!(sit.shadow_slot.is_none(), "backup discarded after restore");
    assert_eq!(swap.used(), 1);

    let home = ptm.on_swap_in(out.home_slot, &mut mem, &mut swap).unwrap();
    let nb = PhysBlock::new(home, BlockIdx(3));
    assert_eq!(
        mem.read_word(nb.addr()),
        10,
        "pre-tx value restored in swap"
    );
}

#[test]
fn commit_of_resident_page_unaffected_by_another_swapped_tx() {
    // Two transactions on two pages; one page swaps out. Committing the
    // resident one must not disturb the swapped one's SIT state.
    let (mut ptm, mut mem, mut swap, mut b) = setup(PtmConfig::select());
    ptm.begin(TxId(0), None);
    ptm.begin(TxId(1), None);
    let b0 = PhysBlock::new(FrameId(0), BlockIdx(1));
    let b1 = PhysBlock::new(FrameId(1), BlockIdx(2));
    ptm.on_tx_eviction(
        &dirty(TxId(0)),
        b0,
        Some(&spec(0, 5)),
        false,
        &mut mem,
        0,
        &mut b,
    )
    .unwrap();
    ptm.on_tx_eviction(
        &dirty(TxId(1)),
        b1,
        Some(&spec(0, 6)),
        false,
        &mut mem,
        0,
        &mut b,
    )
    .unwrap();

    let out = ptm.on_swap_out(FrameId(0), &mut mem, &mut swap);
    ptm.commit(TxId(1), &mut mem, &mut swap, 10, &mut b);

    let sit = ptm.sit_entry(out.home_slot).unwrap();
    assert!(sit.tav_head.is_some(), "swapped tx untouched");
    assert_eq!(ptm.tav_arena().tx_of(sit.tav_head.unwrap()), TxId(0));

    // And the swapped transaction still commits cleanly afterwards.
    ptm.commit(TxId(0), &mut mem, &mut swap, 20, &mut b);
    assert_eq!(ptm.tav_arena().live(), 0);
    assert_eq!(ptm.stats().commits, 2);
}
