//! End-to-end tests of the PTM system against the behaviours the paper
//! specifies: overflow bookkeeping, conflict detection, Copy-PTM vs
//! Select-PTM data movement, the Figure 3 fetch rule, shadow freeing,
//! paging, and word-granularity merging.

use ptm_cache::{BusTimings, SystemBus, TxLineMeta};
use ptm_core::system::AccessKind;
use ptm_core::{PtmConfig, PtmSystem, ShadowFreePolicy, TxStatus};
use ptm_mem::{PhysicalMemory, SpecBlock, SwapStore};
use ptm_types::{BlockIdx, FrameId, Granularity, PhysBlock, TxId, WordIdx, WordMask, BLOCK_SIZE};

fn bus() -> SystemBus {
    SystemBus::new(BusTimings::default())
}

fn setup(cfg: PtmConfig, frames: usize) -> (PtmSystem, PhysicalMemory, SystemBus) {
    let mut mem = PhysicalMemory::new(frames);
    let mut ptm = PtmSystem::new(cfg);
    // Allocate a few home pages.
    for _ in 0..4 {
        let f = mem.alloc().unwrap();
        ptm.on_page_alloc(f);
    }
    (ptm, mem, bus())
}

fn spec_block(fill: u8, words: &[(u8, u32)]) -> SpecBlock {
    let mut data = [fill; BLOCK_SIZE];
    let mut written = WordMask::EMPTY;
    for &(w, v) in words {
        data[w as usize * 4..w as usize * 4 + 4].copy_from_slice(&v.to_le_bytes());
        written.set(WordIdx(w));
    }
    SpecBlock { data, written }
}

fn dirty_meta(tx: TxId, words: &[u8]) -> TxLineMeta {
    let mut m = TxLineMeta::new(tx);
    for &w in words {
        m.record_write(WordIdx(w));
    }
    m
}

fn read_meta(tx: TxId, words: &[u8]) -> TxLineMeta {
    let mut m = TxLineMeta::new(tx);
    for &w in words {
        m.record_read(WordIdx(w));
    }
    m
}

fn block(frame: u32, idx: u8) -> PhysBlock {
    PhysBlock::new(FrameId(frame), BlockIdx(idx))
}

#[test]
fn clean_overflow_creates_tav_and_no_shadow() {
    let (mut ptm, mut mem, mut bus) = setup(PtmConfig::select(), 16);
    let tx = TxId(0);
    ptm.begin(tx, None);
    ptm.on_tx_eviction(
        &read_meta(tx, &[0]),
        block(0, 5),
        None,
        false,
        &mut mem,
        0,
        &mut bus,
    )
    .unwrap();
    assert!(ptm.has_overflows());
    assert_eq!(ptm.stats().clean_overflows, 1);
    assert_eq!(
        ptm.stats().shadow_allocs,
        0,
        "reads never allocate a shadow"
    );
    let entry = ptm.spt_entry(FrameId(0)).unwrap();
    assert!(entry.shadow.is_none());
    assert!(
        entry.tav_head.is_some(),
        "SPT entry without a shadow still anchors the TAV list"
    );
}

const OLD: u32 = 0xAAAA_0001;
const NEW: u32 = 0xBBBB_0002;

#[test]
fn dirty_overflow_select_writes_spec_to_shadow_home_untouched() {
    let (mut ptm, mut mem, mut bus) = setup(PtmConfig::select(), 16);
    let tx = TxId(0);
    ptm.begin(tx, None);
    let b = block(0, 3);
    mem.write_word(b.addr(), OLD);
    let spec = spec_block(0, &[(0, NEW)]);
    ptm.on_tx_eviction(
        &dirty_meta(tx, &[0]),
        b,
        Some(&spec),
        false,
        &mut mem,
        0,
        &mut bus,
    )
    .unwrap();

    let entry = ptm.spt_entry(FrameId(0)).unwrap();
    let shadow = entry.shadow.expect("dirty overflow allocates shadow");
    assert_eq!(mem.read_word(b.addr()), OLD, "home holds committed");
    assert_eq!(
        mem.read_word(b.on_frame(shadow).addr()),
        NEW,
        "shadow holds speculative"
    );
    assert_eq!(ptm.committed_frame(b), FrameId(0));
    assert_eq!(ptm.tx_view_frame(tx, b, WordIdx(0)), shadow);
}

#[test]
fn dirty_overflow_copy_backs_up_then_overwrites_home() {
    let (mut ptm, mut mem, mut bus) = setup(PtmConfig::copy(), 16);
    let tx = TxId(0);
    ptm.begin(tx, None);
    let b = block(0, 3);
    mem.write_word(b.addr(), OLD);
    let spec = spec_block(0, &[(0, NEW)]);
    ptm.on_tx_eviction(
        &dirty_meta(tx, &[0]),
        b,
        Some(&spec),
        false,
        &mut mem,
        0,
        &mut bus,
    )
    .unwrap();

    let entry = ptm.spt_entry(FrameId(0)).unwrap();
    let shadow = entry.shadow.unwrap();
    assert_eq!(mem.read_word(b.addr()), NEW, "home holds speculative");
    assert_eq!(
        mem.read_word(b.on_frame(shadow).addr()),
        OLD,
        "shadow backup"
    );
    assert_eq!(ptm.stats().backup_copies, 1);
    assert_eq!(
        ptm.committed_frame(b),
        shadow,
        "committed redirects to backup"
    );
    assert_eq!(ptm.tx_view_frame(tx, b, WordIdx(0)), FrameId(0));
}

#[test]
fn copy_ptm_second_overflow_of_same_block_backs_up_once() {
    let (mut ptm, mut mem, mut bus) = setup(PtmConfig::copy(), 16);
    let tx = TxId(0);
    ptm.begin(tx, None);
    let b = block(0, 3);
    mem.write_word(b.addr(), OLD);
    ptm.on_tx_eviction(
        &dirty_meta(tx, &[0]),
        b,
        Some(&spec_block(0, &[(0, NEW)])),
        false,
        &mut mem,
        0,
        &mut bus,
    )
    .unwrap();
    ptm.on_tx_eviction(
        &dirty_meta(tx, &[1]),
        b,
        Some(&spec_block(0, &[(1, 7)])),
        false,
        &mut mem,
        10,
        &mut bus,
    )
    .unwrap();
    assert_eq!(
        ptm.stats().backup_copies,
        1,
        "backup only on first dirty overflow"
    );
    assert_eq!(ptm.stats().dirty_overflows, 2);
}

#[test]
fn select_commit_toggles_selection_no_copy() {
    let (mut ptm, mut mem, mut bus) = setup(PtmConfig::select(), 16);
    let tx = TxId(0);
    ptm.begin(tx, None);
    let b = block(0, 3);
    mem.write_word(b.addr(), OLD);
    ptm.on_tx_eviction(
        &dirty_meta(tx, &[0]),
        b,
        Some(&spec_block(0, &[(0, NEW)])),
        false,
        &mut mem,
        0,
        &mut bus,
    )
    .unwrap();
    let shadow = ptm.spt_entry(FrameId(0)).unwrap().shadow.unwrap();

    ptm.commit(tx, &mut mem, &mut SwapStore::new(), 100, &mut bus);
    assert_eq!(ptm.tstate().status(tx), Some(TxStatus::Committed));
    assert_eq!(ptm.stats().selection_toggles, 1);
    assert_eq!(
        ptm.stats().backup_copies + ptm.stats().restore_copies,
        0,
        "no data movement"
    );
    // Committed version is now in the shadow page.
    assert_eq!(ptm.committed_frame(b), shadow);
    assert_eq!(mem.read_word(b.on_frame(shadow).addr()), NEW);
    assert!(!ptm.has_overflows(), "TAV nodes freed on commit");
}

#[test]
fn select_abort_discards_without_copy() {
    let (mut ptm, mut mem, mut bus) = setup(PtmConfig::select(), 16);
    let tx = TxId(0);
    ptm.begin(tx, None);
    let b = block(0, 3);
    mem.write_word(b.addr(), OLD);
    ptm.on_tx_eviction(
        &dirty_meta(tx, &[0]),
        b,
        Some(&spec_block(0, &[(0, NEW)])),
        false,
        &mut mem,
        0,
        &mut bus,
    )
    .unwrap();

    ptm.abort(tx, &mut mem, &mut SwapStore::new(), 100, &mut bus);
    assert_eq!(ptm.tstate().status(tx), Some(TxStatus::Aborted));
    assert_eq!(ptm.committed_frame(b), FrameId(0), "selection untouched");
    assert_eq!(mem.read_word(b.addr()), OLD, "committed value intact");
    assert_eq!(ptm.stats().restore_copies, 0, "abort is copy-free");
    assert_eq!(ptm.stats().shadow_frees, 1, "unused shadow reclaimed");
}

#[test]
fn copy_abort_restores_home_from_shadow() {
    let (mut ptm, mut mem, mut bus) = setup(PtmConfig::copy(), 16);
    let tx = TxId(0);
    ptm.begin(tx, None);
    let b = block(0, 3);
    mem.write_word(b.addr(), OLD);
    ptm.on_tx_eviction(
        &dirty_meta(tx, &[0]),
        b,
        Some(&spec_block(0, &[(0, NEW)])),
        false,
        &mut mem,
        0,
        &mut bus,
    )
    .unwrap();
    assert_eq!(mem.read_word(b.addr()), NEW);

    ptm.abort(tx, &mut mem, &mut SwapStore::new(), 100, &mut bus);
    assert_eq!(mem.read_word(b.addr()), OLD, "home restored");
    assert_eq!(ptm.stats().restore_copies, 1);
    assert_eq!(ptm.stats().shadow_frees, 1);
}

#[test]
fn copy_commit_is_free_of_copies() {
    let (mut ptm, mut mem, mut bus) = setup(PtmConfig::copy(), 16);
    let tx = TxId(0);
    ptm.begin(tx, None);
    let b = block(0, 3);
    ptm.on_tx_eviction(
        &dirty_meta(tx, &[0]),
        b,
        Some(&spec_block(0, &[(0, NEW)])),
        false,
        &mut mem,
        0,
        &mut bus,
    )
    .unwrap();
    let copies_before = ptm.stats().backup_copies;
    ptm.commit(tx, &mut mem, &mut SwapStore::new(), 100, &mut bus);
    assert_eq!(mem.read_word(b.addr()), NEW, "speculative already in place");
    assert_eq!(ptm.stats().backup_copies, copies_before, "no commit copies");
    assert_eq!(ptm.committed_frame(b), FrameId(0));
}

#[test]
fn raw_conflict_detected_for_reader_of_overflowed_write() {
    let (mut ptm, mut mem, mut bus) = setup(PtmConfig::select(), 16);
    let writer = TxId(0);
    let reader = TxId(1);
    ptm.begin(writer, None);
    ptm.begin(reader, None);
    let b = block(0, 3);
    ptm.on_tx_eviction(
        &dirty_meta(writer, &[0]),
        b,
        Some(&spec_block(0, &[(0, NEW)])),
        false,
        &mut mem,
        0,
        &mut bus,
    )
    .unwrap();

    let out = ptm.check_conflict(Some(reader), b, WordIdx(0), AccessKind::Read, 10, &mut bus);
    assert_eq!(out.conflicts, vec![writer]);

    // The writer itself does not conflict with its own overflow.
    let own = ptm.check_conflict(Some(writer), b, WordIdx(0), AccessKind::Read, 10, &mut bus);
    assert!(own.conflicts.is_empty());
}

#[test]
fn war_and_waw_conflicts_detected_for_writers() {
    let (mut ptm, mut mem, mut bus) = setup(PtmConfig::select(), 16);
    let t0 = TxId(0);
    let t1 = TxId(1);
    ptm.begin(t0, None);
    ptm.begin(t1, None);
    // t0 overflowed a READ of block 3 → writer t1 conflicts (WAR).
    ptm.on_tx_eviction(
        &read_meta(t0, &[0]),
        block(0, 3),
        None,
        false,
        &mut mem,
        0,
        &mut bus,
    )
    .unwrap();
    let out = ptm.check_conflict(
        Some(t1),
        block(0, 3),
        WordIdx(0),
        AccessKind::Write,
        5,
        &mut bus,
    );
    assert_eq!(out.conflicts, vec![t0], "WAR");

    // t0 overflowed a WRITE of block 4 → writer t1 conflicts (WAW).
    ptm.on_tx_eviction(
        &dirty_meta(t0, &[0]),
        block(0, 4),
        Some(&spec_block(0, &[(0, 1)])),
        false,
        &mut mem,
        6,
        &mut bus,
    )
    .unwrap();
    let out = ptm.check_conflict(
        Some(t1),
        block(0, 4),
        WordIdx(0),
        AccessKind::Write,
        9,
        &mut bus,
    );
    assert_eq!(out.conflicts, vec![t0], "WAW");

    // A read of block 3 (only read-overflowed) does not conflict but is
    // denied exclusivity.
    let out = ptm.check_conflict(
        Some(t1),
        block(0, 3),
        WordIdx(0),
        AccessKind::Read,
        9,
        &mut bus,
    );
    assert!(out.conflicts.is_empty());
    assert!(out.deny_exclusive);
}

#[test]
fn non_transactional_access_sees_conflicts_too() {
    let (mut ptm, mut mem, mut bus) = setup(PtmConfig::select(), 16);
    let tx = TxId(0);
    ptm.begin(tx, None);
    ptm.on_tx_eviction(
        &dirty_meta(tx, &[0]),
        block(0, 3),
        Some(&spec_block(0, &[(0, 1)])),
        false,
        &mut mem,
        0,
        &mut bus,
    )
    .unwrap();
    let out = ptm.check_conflict(None, block(0, 3), WordIdx(0), AccessKind::Read, 5, &mut bus);
    assert_eq!(
        out.conflicts,
        vec![tx],
        "non-tx read of spec-written block conflicts"
    );
}

#[test]
fn different_blocks_of_same_page_do_not_conflict() {
    let (mut ptm, mut mem, mut bus) = setup(PtmConfig::select(), 16);
    let tx = TxId(0);
    ptm.begin(tx, None);
    ptm.on_tx_eviction(
        &dirty_meta(tx, &[0]),
        block(0, 3),
        Some(&spec_block(0, &[(0, 1)])),
        false,
        &mut mem,
        0,
        &mut bus,
    )
    .unwrap();
    let out = ptm.check_conflict(
        Some(TxId(1)),
        block(0, 7),
        WordIdx(0),
        AccessKind::Write,
        5,
        &mut bus,
    );
    assert!(
        out.conflicts.is_empty(),
        "bookkeeping is per page, detection per block"
    );
}

#[test]
fn fetch_rule_xor_of_summary_and_selection() {
    let (mut ptm, mut mem, mut bus) = setup(PtmConfig::select(), 16);
    let tx = TxId(0);
    ptm.begin(tx, None);
    let b = block(0, 3);
    // No overflow state: fetch from home.
    assert_eq!(ptm.fetch_frame(b), FrameId(0));

    ptm.on_tx_eviction(
        &dirty_meta(tx, &[0]),
        b,
        Some(&spec_block(0, &[(0, NEW)])),
        false,
        &mut mem,
        0,
        &mut bus,
    )
    .unwrap();
    let shadow = ptm.spt_entry(FrameId(0)).unwrap().shadow.unwrap();
    // wsum=1, sel=0 → XOR=1 → shadow (the speculative version).
    assert_eq!(ptm.fetch_frame(b), shadow);

    ptm.commit(tx, &mut mem, &mut SwapStore::new(), 10, &mut bus);
    // wsum=0, sel=1 → XOR=1 → shadow (now the committed version).
    assert_eq!(ptm.fetch_frame(b), shadow);
    // Another block of the page: wsum=0, sel=0 → home.
    assert_eq!(ptm.fetch_frame(block(0, 4)), FrameId(0));
}

#[test]
fn cleanup_window_stalls_subsequent_access() {
    let (mut ptm, mut mem, mut bus) = setup(PtmConfig::select(), 16);
    let tx = TxId(0);
    ptm.begin(tx, None);
    ptm.on_tx_eviction(
        &dirty_meta(tx, &[0]),
        block(0, 3),
        Some(&spec_block(0, &[(0, 1)])),
        false,
        &mut mem,
        0,
        &mut bus,
    )
    .unwrap();
    let done = ptm.commit(tx, &mut mem, &mut SwapStore::new(), 1000, &mut bus);
    assert!(done > 1000, "cleanup takes time");
    let out = ptm.check_conflict(
        Some(TxId(1)),
        block(0, 3),
        WordIdx(0),
        AccessKind::Read,
        1001,
        &mut bus,
    );
    assert_eq!(
        out.stall_until,
        Some(done),
        "access during lazy cleanup stalls"
    );
    let after = ptm.check_conflict(
        Some(TxId(1)),
        block(0, 3),
        WordIdx(0),
        AccessKind::Read,
        done + 1,
        &mut bus,
    );
    assert_eq!(after.stall_until, None);
}

#[test]
fn swap_out_and_in_preserves_tav_and_selection() {
    let (mut ptm, mut mem, mut bus) = setup(PtmConfig::select(), 32);
    let mut swap = SwapStore::new();
    let tx = TxId(0);
    ptm.begin(tx, None);
    let b = block(0, 3);
    mem.write_word(b.addr(), OLD);
    ptm.on_tx_eviction(
        &dirty_meta(tx, &[0]),
        b,
        Some(&spec_block(0, &[(0, NEW)])),
        false,
        &mut mem,
        0,
        &mut bus,
    )
    .unwrap();

    let out = ptm.on_swap_out(FrameId(0), &mut mem, &mut swap);
    assert!(
        ptm.spt_entry(FrameId(0)).is_none(),
        "SPT entry migrated to SIT"
    );
    assert_eq!(swap.used(), 2, "home and shadow co-swapped");

    let new_home = ptm.on_swap_in(out.home_slot, &mut mem, &mut swap).unwrap();
    let entry = ptm.spt_entry(new_home).unwrap();
    assert!(entry.shadow.is_some());
    assert!(entry.tav_head.is_some(), "TAV list survives the swap");
    let nb = PhysBlock::new(new_home, BlockIdx(3));
    assert_eq!(mem.read_word(nb.addr()), OLD, "home data survived");
    let shadow = entry.shadow.unwrap();
    assert_eq!(
        mem.read_word(nb.on_frame(shadow).addr()),
        NEW,
        "shadow data survived"
    );

    // Conflict detection still works after the migration.
    let out = ptm.check_conflict(
        Some(TxId(1)),
        nb,
        WordIdx(0),
        AccessKind::Read,
        50,
        &mut bus,
    );
    assert_eq!(out.conflicts, vec![tx]);
    ptm.commit(tx, &mut mem, &mut swap, 60, &mut bus);
    assert_eq!(ptm.committed_frame(nb), shadow);
}

#[test]
fn merge_on_swap_folds_shadow_into_home() {
    let (mut ptm, mut mem, mut bus) = setup(PtmConfig::select(), 32);
    let mut swap = SwapStore::new();
    let tx = TxId(0);
    ptm.begin(tx, None);
    let b = block(0, 3);
    mem.write_word(b.addr(), OLD);
    ptm.on_tx_eviction(
        &dirty_meta(tx, &[0]),
        b,
        Some(&spec_block(0, &[(0, NEW)])),
        false,
        &mut mem,
        0,
        &mut bus,
    )
    .unwrap();
    ptm.commit(tx, &mut mem, &mut swap, 10, &mut bus);
    // Committed data now lives in the shadow page, sel bit set.

    let out = ptm.on_swap_out(FrameId(0), &mut mem, &mut swap);
    assert_eq!(swap.used(), 1, "shadow merged and freed, only home swapped");
    assert_eq!(ptm.stats().shadow_frees, 1);

    let new_home = ptm.on_swap_in(out.home_slot, &mut mem, &mut swap).unwrap();
    let entry = ptm.spt_entry(new_home).unwrap();
    assert!(entry.shadow.is_none());
    assert!(
        entry.sel.is_empty(),
        "selection vector cleared by the merge"
    );
    assert_eq!(
        mem.read_word(PhysBlock::new(new_home, BlockIdx(3)).addr()),
        NEW,
        "merged committed value"
    );
}

#[test]
fn lazy_migrate_toggles_and_frees_shadow() {
    let cfg = PtmConfig {
        shadow_free: ShadowFreePolicy::LazyMigrate,
        ..PtmConfig::select()
    };
    let (mut ptm, mut mem, mut bus) = setup(cfg, 32);
    let tx = TxId(0);
    ptm.begin(tx, None);
    let b = block(0, 3);
    mem.write_word(b.addr(), OLD);
    ptm.on_tx_eviction(
        &dirty_meta(tx, &[0]),
        b,
        Some(&spec_block(0, &[(0, NEW)])),
        false,
        &mut mem,
        0,
        &mut bus,
    )
    .unwrap();
    ptm.commit(tx, &mut mem, &mut SwapStore::new(), 10, &mut bus);
    assert_eq!(ptm.spt_entry(FrameId(0)).unwrap().sel.count(), 1);

    ptm.on_nontx_dirty_writeback(b, &mut mem);
    assert_eq!(ptm.stats().lazy_migrations, 1);
    let entry = ptm.spt_entry(FrameId(0)).unwrap();
    assert!(entry.sel.is_empty(), "bit migrated back to home");
    assert!(entry.shadow.is_none(), "empty shadow freed");
    assert_eq!(mem.read_word(b.addr()), NEW, "committed data now in home");
    assert_eq!(ptm.committed_frame(b), FrameId(0));
}

#[test]
fn lazy_migrate_skips_blocks_with_live_speculative_writers() {
    let cfg = PtmConfig {
        shadow_free: ShadowFreePolicy::LazyMigrate,
        ..PtmConfig::select()
    };
    let (mut ptm, mut mem, mut bus) = setup(cfg, 32);
    // tx0 commits a write (sel bit set) then tx1 overflows a new write to
    // the same block; its speculative data occupies the home slot.
    let b = block(0, 3);
    ptm.begin(TxId(0), None);
    ptm.on_tx_eviction(
        &dirty_meta(TxId(0), &[0]),
        b,
        Some(&spec_block(0, &[(0, NEW)])),
        false,
        &mut mem,
        0,
        &mut bus,
    )
    .unwrap();
    ptm.commit(TxId(0), &mut mem, &mut SwapStore::new(), 10, &mut bus);
    ptm.begin(TxId(1), None);
    ptm.on_tx_eviction(
        &dirty_meta(TxId(1), &[0]),
        b,
        Some(&spec_block(0, &[(0, 77)])),
        false,
        &mut mem,
        20,
        &mut bus,
    )
    .unwrap();

    ptm.on_nontx_dirty_writeback(b, &mut mem);
    assert_eq!(
        ptm.stats().lazy_migrations,
        0,
        "migration must not clobber speculative data"
    );
}

#[test]
fn word_granularity_allows_disjoint_word_writers() {
    let cfg = PtmConfig::select_with_granularity(Granularity::WordCacheMem);
    let (mut ptm, mut mem, mut bus) = setup(cfg, 32);
    let t0 = TxId(0);
    let t1 = TxId(1);
    ptm.begin(t0, None);
    ptm.begin(t1, None);
    let b = block(0, 3);
    mem.write_word(b.addr(), OLD);

    ptm.on_tx_eviction(
        &dirty_meta(t0, &[0]),
        b,
        Some(&spec_block(0, &[(0, 100)])),
        false,
        &mut mem,
        0,
        &mut bus,
    )
    .unwrap();
    // t1 writes a DIFFERENT word of the same block: no conflict at word level.
    let out = ptm.check_conflict(Some(t1), b, WordIdx(5), AccessKind::Write, 5, &mut bus);
    assert!(out.conflicts.is_empty(), "disjoint words do not conflict");
    // Same word still conflicts.
    let out = ptm.check_conflict(Some(t1), b, WordIdx(0), AccessKind::Write, 5, &mut bus);
    assert_eq!(out.conflicts, vec![t0]);

    ptm.on_tx_eviction(
        &dirty_meta(t1, &[5]),
        b,
        Some(&spec_block(0, &[(5, 500)])),
        false,
        &mut mem,
        10,
        &mut bus,
    )
    .unwrap();

    // Commit both; the committed image must contain both transactions' words.
    ptm.commit(t0, &mut mem, &mut SwapStore::new(), 20, &mut bus);
    ptm.commit(t1, &mut mem, &mut SwapStore::new(), 40, &mut bus);
    let committed = ptm.committed_frame(b);
    let base = b.on_frame(committed).addr();
    assert_eq!(mem.read_word(base), 100, "t0's word survived");
    assert_eq!(
        mem.read_word(ptm_types::PhysAddr(base.0 + 20)),
        500,
        "t1's word survived"
    );
    assert!(
        ptm.stats().word_merge_copies >= 1,
        "first committer merged words"
    );
}

#[test]
fn block_granularity_flags_false_sharing_as_conflict() {
    let (mut ptm, mut mem, mut bus) = setup(PtmConfig::select(), 32);
    let t0 = TxId(0);
    ptm.begin(t0, None);
    let b = block(0, 3);
    ptm.on_tx_eviction(
        &dirty_meta(t0, &[0]),
        b,
        Some(&spec_block(0, &[(0, 1)])),
        false,
        &mut mem,
        0,
        &mut bus,
    )
    .unwrap();
    // Different word, same block → conflict at block granularity.
    let out = ptm.check_conflict(Some(TxId(1)), b, WordIdx(5), AccessKind::Write, 5, &mut bus);
    assert_eq!(
        out.conflicts,
        vec![t0],
        "false sharing conflicts in blk-only mode"
    );
}

#[test]
fn spt_cache_miss_costs_walk_hit_is_cheap() {
    let (mut ptm, mut mem, mut bus) = setup(PtmConfig::select(), 32);
    let tx = TxId(0);
    ptm.begin(tx, None);
    ptm.on_tx_eviction(
        &dirty_meta(tx, &[0]),
        block(1, 0),
        Some(&spec_block(0, &[(0, 1)])),
        false,
        &mut mem,
        0,
        &mut bus,
    )
    .unwrap();

    // Many distinct pages to evict frame 1 from the 512-entry SPT cache is
    // impractical here; instead verify hit/miss accounting directly.
    let h0 = ptm.stats().spt_cache_hits;
    let _ = ptm.check_conflict(
        Some(TxId(1)),
        block(1, 0),
        WordIdx(0),
        AccessKind::Read,
        10,
        &mut bus,
    );
    assert!(
        ptm.stats().spt_cache_hits > h0,
        "page just touched by eviction is cached"
    );
}

#[test]
fn multiple_pages_commit_frees_all_nodes() {
    let (mut ptm, mut mem, mut bus) = setup(PtmConfig::select(), 32);
    let tx = TxId(0);
    ptm.begin(tx, None);
    for frame in 0..3u32 {
        ptm.on_tx_eviction(
            &dirty_meta(tx, &[0]),
            block(frame, 1),
            Some(&spec_block(0, &[(0, frame)])),
            false,
            &mut mem,
            0,
            &mut bus,
        )
        .unwrap();
    }
    assert!(ptm.has_overflows());
    ptm.commit(tx, &mut mem, &mut SwapStore::new(), 100, &mut bus);
    assert!(!ptm.has_overflows(), "vertical list walk freed every node");
    assert_eq!(ptm.stats().selection_toggles, 3);
}

#[test]
fn two_transactions_on_same_page_have_separate_nodes() {
    let (mut ptm, mut mem, mut bus) = setup(PtmConfig::select(), 32);
    ptm.begin(TxId(0), None);
    ptm.begin(TxId(1), None);
    ptm.on_tx_eviction(
        &read_meta(TxId(0), &[0]),
        block(0, 1),
        None,
        false,
        &mut mem,
        0,
        &mut bus,
    )
    .unwrap();
    ptm.on_tx_eviction(
        &read_meta(TxId(1), &[0]),
        block(0, 2),
        None,
        false,
        &mut mem,
        0,
        &mut bus,
    )
    .unwrap();

    // Aborting tx0 must leave tx1's bookkeeping intact.
    ptm.abort(TxId(0), &mut mem, &mut SwapStore::new(), 10, &mut bus);
    assert!(ptm.has_overflows());
    let out = ptm.check_conflict(
        Some(TxId(2)),
        block(0, 2),
        WordIdx(0),
        AccessKind::Write,
        20,
        &mut bus,
    );
    assert_eq!(out.conflicts, vec![TxId(1)]);
}
