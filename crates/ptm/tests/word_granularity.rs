//! Unit coverage of the word-granularity machinery: contested-block
//! tracking, the mirror rule, merge commits, word-selective views, the
//! per-block overflow bit, and Copy-PTM's word-masked abort restore.

use ptm_cache::{BusTimings, SystemBus, TxLineMeta};
use ptm_core::system::AccessKind;
use ptm_core::{PtmConfig, PtmSystem};
use ptm_mem::{PhysicalMemory, SpecBlock, SwapStore};
use ptm_types::{BlockIdx, FrameId, Granularity, PhysBlock, TxId, WordIdx, WordMask, BLOCK_SIZE};

fn bus() -> SystemBus {
    SystemBus::new(BusTimings::default())
}

fn setup(cfg: PtmConfig) -> (PtmSystem, PhysicalMemory, SystemBus) {
    let mut mem = PhysicalMemory::new(32);
    let mut ptm = PtmSystem::new(cfg);
    for _ in 0..4 {
        let f = mem.alloc().unwrap();
        ptm.on_page_alloc(f);
    }
    (ptm, mem, bus())
}

fn spec(words: &[(u8, u32)]) -> SpecBlock {
    let mut data = [0u8; BLOCK_SIZE];
    let mut written = WordMask::EMPTY;
    for &(w, v) in words {
        data[w as usize * 4..w as usize * 4 + 4].copy_from_slice(&v.to_le_bytes());
        written.set(WordIdx(w));
    }
    SpecBlock { data, written }
}

fn meta_writing(tx: TxId, words: &[u8]) -> TxLineMeta {
    let mut m = TxLineMeta::new(tx);
    for &w in words {
        m.record_write(WordIdx(w));
    }
    m
}

fn blk(idx: u8) -> PhysBlock {
    PhysBlock::new(FrameId(0), BlockIdx(idx))
}

#[test]
fn uncontested_blocks_keep_the_toggle_fast_path() {
    let (mut ptm, mut mem, mut b) = setup(PtmConfig::select_with_granularity(
        Granularity::WordCacheMem,
    ));
    let tx = TxId(0);
    ptm.begin(tx, None);
    mem.write_word(blk(3).addr(), 10);
    ptm.on_tx_eviction(
        &meta_writing(tx, &[0]),
        blk(3),
        Some(&spec(&[(0, 20)])),
        false,
        &mut mem,
        0,
        &mut b,
    )
    .unwrap();
    ptm.commit(tx, &mut mem, &mut SwapStore::new(), 10, &mut b);
    assert_eq!(ptm.stats().selection_toggles, 1, "sole writer toggles");
    assert_eq!(ptm.stats().word_merge_copies, 0);
    let committed = ptm.committed_frame(blk(3));
    assert_ne!(committed, FrameId(0), "committed moved to the shadow");
    assert_eq!(mem.read_word(blk(3).on_frame(committed).addr()), 20);
}

#[test]
fn contested_blocks_merge_instead_of_toggling() {
    let (mut ptm, mut mem, mut b) = setup(PtmConfig::select_with_granularity(
        Granularity::WordCacheMem,
    ));
    let (t0, t1) = (TxId(0), TxId(1));
    ptm.begin(t0, None);
    ptm.begin(t1, None);
    mem.write_word(blk(3).addr(), 1);

    ptm.on_tx_eviction(
        &meta_writing(t0, &[0]),
        blk(3),
        Some(&spec(&[(0, 100)])),
        false,
        &mut mem,
        0,
        &mut b,
    )
    .unwrap();
    // t1's eviction sees t0's overflow: contested; both merge at commit.
    ptm.on_tx_eviction(
        &meta_writing(t1, &[5]),
        blk(3),
        Some(&spec(&[(5, 500)])),
        false,
        &mut mem,
        5,
        &mut b,
    )
    .unwrap();
    assert!(ptm.is_contested(blk(3)));

    ptm.commit(t0, &mut mem, &mut SwapStore::new(), 10, &mut b);
    ptm.commit(t1, &mut mem, &mut SwapStore::new(), 20, &mut b);
    assert_eq!(ptm.stats().selection_toggles, 0, "contested: no toggles");
    assert_eq!(ptm.stats().word_merge_copies, 2);
    // Committed page stays home and has both words plus the original word 1.
    assert_eq!(ptm.committed_frame(blk(3)), FrameId(0));
    assert_eq!(mem.read_word(blk(3).addr()), 100);
    let w5 = ptm_types::PhysAddr(blk(3).addr().0 + 20);
    assert_eq!(mem.read_word(w5), 500);
}

#[test]
fn contested_is_sticky_across_generations() {
    let (mut ptm, mut mem, mut b) =
        setup(PtmConfig::select_with_granularity(Granularity::WordCache));
    ptm.mark_contested(blk(7));
    // A later, completely solitary writer still takes the masked/merge path.
    let tx = TxId(0);
    ptm.begin(tx, None);
    mem.write_word(blk(7).addr(), 42);
    ptm.on_tx_eviction(
        &meta_writing(tx, &[2]),
        blk(7),
        Some(&spec(&[(2, 9)])),
        false,
        &mut mem,
        0,
        &mut b,
    )
    .unwrap();
    assert_eq!(
        mem.read_word(blk(7).addr()),
        42,
        "masked write leaves unwritten home words alone"
    );
    ptm.commit(tx, &mut mem, &mut SwapStore::new(), 10, &mut b);
    assert_eq!(ptm.stats().selection_toggles, 0);
    assert_eq!(ptm.stats().word_merge_copies, 1);
}

#[test]
fn mirror_location_points_at_live_speculative_pages() {
    let (mut ptm, mut mem, mut b) = setup(PtmConfig::select_with_granularity(
        Granularity::WordCacheMem,
    ));
    let t0 = TxId(0);
    ptm.begin(t0, None);
    assert!(
        ptm.mirror_location(blk(3), None).is_none(),
        "no overflow yet"
    );

    ptm.on_tx_eviction(
        &meta_writing(t0, &[0]),
        blk(3),
        Some(&spec(&[(0, 1)])),
        false,
        &mut mem,
        0,
        &mut b,
    )
    .unwrap();
    let m = ptm
        .mirror_location(blk(3), None)
        .expect("live overflow writer");
    assert_eq!(
        m.frame(),
        ptm.spt_entry(FrameId(0)).unwrap().shadow.unwrap()
    );
    assert!(
        ptm.mirror_location(blk(3), Some(t0)).is_none(),
        "excluding the only writer yields nothing"
    );

    ptm.commit(t0, &mut mem, &mut SwapStore::new(), 10, &mut b);
    assert!(
        ptm.mirror_location(blk(3), None).is_none(),
        "nothing live after commit"
    );
}

#[test]
fn block_overflow_bit_reflects_reads_and_writes() {
    let (mut ptm, mut mem, mut b) = setup(PtmConfig::select_with_granularity(
        Granularity::WordCacheMem,
    ));
    let tx = TxId(0);
    ptm.begin(tx, None);
    assert!(!ptm.block_overflowed(blk(3), None));

    let mut m = TxLineMeta::new(tx);
    m.record_read(WordIdx(1));
    ptm.on_tx_eviction(&m, blk(3), None, false, &mut mem, 0, &mut b)
        .unwrap();
    assert!(
        ptm.block_overflowed(blk(3), None),
        "read overflow sets the bit"
    );
    assert!(
        !ptm.block_overflowed(blk(3), Some(tx)),
        "own state excluded on request"
    );
    assert!(
        !ptm.block_overflowed(blk(9), None),
        "other blocks unaffected"
    );

    ptm.commit(tx, &mut mem, &mut SwapStore::new(), 10, &mut b);
    assert!(!ptm.block_overflowed(blk(3), None), "cleared with the TAVs");
}

#[test]
fn word_selective_view_reads_own_words_from_spec_only() {
    let (mut ptm, mut mem, mut b) = setup(PtmConfig::select_with_granularity(
        Granularity::WordCacheMem,
    ));
    let tx = TxId(0);
    ptm.begin(tx, None);
    mem.write_word(blk(3).addr(), 7); // committed word 0
    ptm.on_tx_eviction(
        &meta_writing(tx, &[5]),
        blk(3),
        Some(&spec(&[(5, 55)])),
        false,
        &mut mem,
        0,
        &mut b,
    )
    .unwrap();

    let shadow = ptm.spt_entry(FrameId(0)).unwrap().shadow.unwrap();
    assert_eq!(
        ptm.tx_view_frame(tx, blk(3), WordIdx(5)),
        shadow,
        "own written word reads the speculative page"
    );
    assert_eq!(
        ptm.tx_view_frame(tx, blk(3), WordIdx(0)),
        FrameId(0),
        "unwritten word reads the committed page"
    );
    ptm.commit(tx, &mut mem, &mut SwapStore::new(), 10, &mut b);
}

#[test]
fn copy_word_mode_abort_restores_only_written_words() {
    let (mut ptm, mut mem, mut b) = setup(PtmConfig {
        granularity: Granularity::WordCacheMem,
        ..PtmConfig::copy()
    });
    let tx = TxId(0);
    ptm.begin(tx, None);
    mem.write_word(blk(3).addr(), 10); // word 0
    let w5 = ptm_types::PhysAddr(blk(3).addr().0 + 20);
    mem.write_word(w5, 50); // word 5

    // Contested path: mark it so the home write is word-masked.
    ptm.mark_contested(blk(3));
    ptm.on_tx_eviction(
        &meta_writing(tx, &[0]),
        blk(3),
        Some(&spec(&[(0, 99)])),
        false,
        &mut mem,
        0,
        &mut b,
    )
    .unwrap();
    assert_eq!(mem.read_word(blk(3).addr()), 99, "home word 0 speculative");
    assert_eq!(
        mem.read_word(w5),
        50,
        "home word 5 untouched by masked write"
    );

    ptm.abort(tx, &mut mem, &mut SwapStore::new(), 10, &mut b);
    assert_eq!(mem.read_word(blk(3).addr()), 10, "word 0 restored");
    assert_eq!(mem.read_word(w5), 50, "word 5 never disturbed");
    assert_eq!(ptm.stats().restore_copies, 1);
}

#[test]
fn word_level_conflicts_only_in_word_in_memory_mode() {
    // wd:cache keeps block-granular OVERFLOW conflicts even though the
    // caches compare words.
    for (granularity, expect_conflict) in [
        (Granularity::WordCache, true),
        (Granularity::WordCacheMem, false),
    ] {
        let (mut ptm, mut mem, mut b) = setup(PtmConfig::select_with_granularity(granularity));
        let t0 = TxId(0);
        ptm.begin(t0, None);
        ptm.on_tx_eviction(
            &meta_writing(t0, &[0]),
            blk(3),
            Some(&spec(&[(0, 1)])),
            false,
            &mut mem,
            0,
            &mut b,
        )
        .unwrap();
        // A different word of the same block:
        let out = ptm.check_conflict(
            Some(TxId(1)),
            blk(3),
            WordIdx(9),
            AccessKind::Write,
            5,
            &mut b,
        );
        assert_eq!(
            !out.conflicts.is_empty(),
            expect_conflict,
            "{granularity:?}"
        );
        ptm.commit(t0, &mut mem, &mut SwapStore::new(), 10, &mut b);
    }
}
