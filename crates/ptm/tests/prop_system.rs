//! Model-based property testing of `PtmSystem` in isolation: random
//! sequences of overflow/commit/abort events against a plain map of
//! committed values. Covers both policies and all three granularities at
//! the unit level (disjoint writers only — concurrent same-word writers are
//! excluded by conflict detection, which the machine-level suite covers).

use proptest::prelude::*;
use ptm_cache::{BusTimings, SystemBus, TxLineMeta};
use ptm_core::{PtmConfig, PtmSystem};
use ptm_mem::{PhysicalMemory, SpecBlock, SwapStore};
use ptm_types::{BlockIdx, Granularity, PhysAddr, PhysBlock, TxId, WordIdx, WordMask, BLOCK_SIZE};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Event {
    /// Transaction `t` writes word `w` of block `b` (value derived) and the
    /// line immediately overflows.
    WriteOverflow { t: u8, b: u8, w: u8 },
    /// Transaction `t` commits.
    Commit { t: u8 },
    /// Transaction `t` aborts (and will not return).
    Abort { t: u8 },
}

fn event() -> impl Strategy<Value = Event> {
    prop_oneof![
        4 => (0u8..4, 0u8..6, 0u8..4).prop_map(|(t, b, w)| Event::WriteOverflow { t, b, w }),
        2 => (0u8..4).prop_map(|t| Event::Commit { t }),
        1 => (0u8..4).prop_map(|t| Event::Abort { t }),
    ]
}

fn configs() -> Vec<PtmConfig> {
    vec![
        PtmConfig::copy(),
        PtmConfig::select(),
        PtmConfig::select_with_granularity(Granularity::WordCache),
        PtmConfig::select_with_granularity(Granularity::WordCacheMem),
        PtmConfig {
            granularity: Granularity::WordCacheMem,
            ..PtmConfig::copy()
        },
    ]
}

/// Each (transaction, word) pair gets a distinct slot so that writers are
/// always word-disjoint: word index = t * 4 + w (16 words per block, 4 txs).
fn word_of(t: u8, w: u8) -> WordIdx {
    WordIdx(t * 4 + w)
}

fn value_of(t: u8, b: u8, w: u8, gen: u32) -> u32 {
    1 + u32::from(t) * 1000 + u32::from(b) * 100 + u32::from(w) * 10 + gen
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn ptm_system_matches_committed_value_model(events in prop::collection::vec(event(), 1..60)) {
        for cfg in configs() {
            let word_mode = cfg.granularity.word_in_cache();
            let mut ptm = PtmSystem::new(cfg);
            let mut mem = PhysicalMemory::new(64);
            let frame = mem.alloc().unwrap();
            ptm.on_page_alloc(frame);
            let mut bus = SystemBus::new(BusTimings::default());

            // Model: committed value per (block, word); plus per-tx pending
            // writes and generation counters for distinct values.
            let mut committed: HashMap<(u8, u8), u32> = HashMap::new();
            let mut pending: Vec<HashMap<(u8, u8), u32>> = vec![HashMap::new(); 4];
            let mut live = [false; 4];
            let mut dead = [false; 4];
            let mut next_id = 0u64;
            let mut ids = [TxId(0); 4];
            let mut gen = 0u32;
            let mut now = 0u64;

            for e in &events {
                now += 100;
                match *e {
                    Event::WriteOverflow { t, b, w } => {
                        let (ti, bi) = (t as usize, b);
                        if dead[ti] {
                            continue;
                        }
                        if !live[ti] {
                            ids[ti] = TxId(next_id);
                            next_id += 1;
                            ptm.begin(ids[ti], None);
                            live[ti] = true;
                        }
                        // In block mode, only one live writer per block is
                        // legal: skip events that would violate what
                        // conflict detection forbids.
                        if !word_mode {
                            let clash = (0..4).any(|o| {
                                o != ti && live[o] && pending[o].keys().any(|(ob, _)| *ob == bi)
                            });
                            if clash {
                                continue;
                            }
                        }
                        gen += 1;
                        let word = word_of(t, w);
                        let value = value_of(t, b, w, gen);
                        // Build the spec snapshot the machine would hold: the
                        // transaction's full view of the block.
                        let mut data = [0u8; BLOCK_SIZE];
                        for ww in 0..16u8 {
                            let base = committed.get(&(bi, ww)).copied().unwrap_or(0);
                            let v = pending[ti].get(&(bi, ww)).copied().unwrap_or(base);
                            data[ww as usize * 4..ww as usize * 4 + 4]
                                .copy_from_slice(&v.to_le_bytes());
                        }
                        data[word.0 as usize * 4..word.0 as usize * 4 + 4]
                            .copy_from_slice(&value.to_le_bytes());
                        let mut written = WordMask::EMPTY;
                        // The buffer carries ALL of this tx's writes to the
                        // block so far plus the new one (as a refetched
                        // line's buffer would).
                        for ((ob, ow), _) in pending[ti].iter() {
                            if *ob == bi {
                                written.set(WordIdx(*ow));
                            }
                        }
                        written.set(word);
                        pending[ti].insert((bi, word.0), value);

                        let mut meta = TxLineMeta::new(ids[ti]);
                        meta.record_write(word);
                        for ((ob, ow), _) in pending[ti].iter() {
                            if *ob == bi {
                                meta.record_write(WordIdx(*ow));
                            }
                        }
                        ptm.on_tx_eviction(
                            &meta,
                            PhysBlock::new(frame, BlockIdx(bi)),
                            Some(&SpecBlock { data, written }),
                            false,
                            &mut mem,
                            now,
                            &mut bus,
                        ).unwrap();
                    }
                    Event::Commit { t } => {
                        let ti = t as usize;
                        if live[ti] {
                            ptm.commit(ids[ti], &mut mem, &mut SwapStore::new(), now, &mut bus);
                            for ((b, w), v) in pending[ti].drain() {
                                committed.insert((b, w), v);
                            }
                            live[ti] = false;
                        }
                    }
                    Event::Abort { t } => {
                        let ti = t as usize;
                        if live[ti] {
                            ptm.abort(ids[ti], &mut mem, &mut SwapStore::new(), now, &mut bus);
                            pending[ti].clear();
                            live[ti] = false;
                            dead[ti] = true;
                        }
                    }
                }
            }
            // Finish everything still live so the committed view is final.
            for ti in 0..4 {
                if live[ti] {
                    ptm.commit(ids[ti], &mut mem, &mut SwapStore::new(), now + 1_000, &mut bus);
                    for ((b, w), v) in pending[ti].drain() {
                        committed.insert((b, w), v);
                    }
                }
            }

            // Verify every written word's committed value.
            for ((b, w), v) in &committed {
                let block = PhysBlock::new(frame, BlockIdx(*b));
                let cf = ptm.committed_frame(block);
                let pa = PhysAddr::from_frame(cf, block.addr().page_offset() + *w as usize * 4);
                prop_assert_eq!(
                    mem.read_word(pa),
                    *v,
                    "cfg {:?}: block {} word {} diverged",
                    cfg,
                    b,
                    w
                );
            }
        }
    }
}
