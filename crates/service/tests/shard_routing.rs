//! Property tests for shard routing: the route must be a pure, total,
//! monotone function of the account key, independent of everything else
//! the service does.

use proptest::prelude::*;
use ptm_service::ShardMap;
use ptm_workloads::ClientTx;

proptest! {
    /// Routing is pure: only `(shards, accounts, account)` determine the
    /// shard — rebuilding the map or re-asking gives the same answer —
    /// and the answer is always in range.
    #[test]
    fn routing_is_a_pure_in_range_function_of_the_key(
        shards in 1usize..=8,
        extra in 0u64..2_000_000,
        account_frac in 0.0f64..1.0,
    ) {
        let accounts = shards as u64 + extra;
        let account = ((accounts as f64 * account_frac) as u64).min(accounts - 1);
        let map = ShardMap::new(shards, accounts);
        let s = map.shard_of(account);
        prop_assert!(s < shards);
        prop_assert_eq!(s, map.shard_of(account));
        prop_assert_eq!(s, ShardMap::new(shards, accounts).shard_of(account));
    }

    /// Key ranges are contiguous: routing is monotone in the account id,
    /// and the extreme keys land on the extreme shards.
    #[test]
    fn routing_is_monotone_with_full_coverage(
        shards in 1usize..=8,
        extra in 0u64..100_000,
        a in 0u64..100_000,
        b in 0u64..100_000,
    ) {
        let accounts = shards as u64 + extra;
        let (a, b) = (a % accounts, b % accounts);
        let map = ShardMap::new(shards, accounts);
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(map.shard_of(lo) <= map.shard_of(hi));
        prop_assert_eq!(map.shard_of(0), 0);
        prop_assert_eq!(map.shard_of(accounts - 1), shards - 1);
    }

    /// A transaction's owner is exactly the route of its debited account,
    /// for transfers and read-only probes alike.
    #[test]
    fn owner_follows_the_debited_account(
        shards in 1usize..=8,
        extra in 0u64..1_000_000,
        from in 0u64..1_000_000,
        to in 0u64..1_000_000,
        read_only in any::<bool>(),
    ) {
        let accounts = shards as u64 + extra;
        let (from, to) = (from % accounts, to % accounts);
        let map = ShardMap::new(shards, accounts);
        let tx = ClientTx { id: 1, from, to, amount: 5, read_only };
        prop_assert_eq!(map.owner(&tx), map.shard_of(from));
        // Cross-shard classification agrees with the two routes.
        let cross = !read_only && map.shard_of(from) != map.shard_of(to);
        prop_assert_eq!(map.is_cross_shard(&tx), cross);
    }

    /// Load balance of the ranges themselves: with `accounts` divisible
    /// by `shards`, every shard owns exactly `accounts / shards` keys.
    #[test]
    fn even_spaces_split_evenly(
        shards in 1usize..=8,
        per_shard in 1u64..512,
    ) {
        let accounts = per_shard * shards as u64;
        let map = ShardMap::new(shards, accounts);
        let mut counts = vec![0u64; shards];
        for a in 0..accounts {
            counts[map.shard_of(a)] += 1;
        }
        prop_assert!(counts.iter().all(|&c| c == per_shard), "{:?}", counts);
    }
}
