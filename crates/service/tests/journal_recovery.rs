//! Crash-recovery oracle sweep: kill the journaled pipeline at every K-th
//! step, recover, and hold the recovery to the committed-prefix contract:
//!
//! 1. recovered transactions are a prefix of the submission order;
//! 2. no accepted-and-durably-acked transaction is lost;
//! 3. no phantom receipts: every force-covered block recovers committed,
//!    with bit-identical receipts to the ones delivered pre-crash;
//! 4. recovered balances equal the naive wrapping ledger fold of exactly
//!    the recovered transfers;
//! 5. recovery is idempotent: recovering the recovered journal changes
//!    nothing and re-executes nothing.

use ptm_core::durability::ForcePolicy;
use ptm_mem::logdev::{LogDevConfig, LogFaultPlan};
use ptm_service::{
    recover, run_stream_with_crash, CrashRun, JournalConfig, ServiceConfig, ServiceCrashImage,
    ServiceCrashPlan,
};
use ptm_workloads::{service::generate, ClientTx, ServiceWorkloadConfig};
use std::collections::BTreeMap;

fn sweep_cfg(policy: ForcePolicy, fault_seed: u64) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(1_000, 2);
    cfg.max_batch = 8;
    cfg.with_journal(JournalConfig {
        policy,
        dev: LogDevConfig::realistic(),
        faults: LogFaultPlan::from_seed(fault_seed),
    })
}

fn sweep_stream() -> Vec<ClientTx> {
    generate(&ServiceWorkloadConfig {
        accounts: 1_000,
        skew: 0.9,
        seed: 42,
        txs: 60,
        read_only_pct: 20,
    })
}

/// The crash oracle: recover `image` and check every invariant above.
/// Returns the number of transactions that survived.
fn check_crash_point(cfg: &ServiceConfig, stream: &[ClientTx], image: &ServiceCrashImage) -> usize {
    let rec = recover(cfg, &image.journal);
    assert_eq!(rec.report.delta_mismatches, 0, "re-execution is pure");

    // (1) Committed prefix of the submission order, each tx exactly once.
    let mut recovered: Vec<u64> = rec
        .outcomes
        .iter()
        .flat_map(|o| o.receipts.iter().map(|r| r.tx_id))
        .collect();
    recovered.sort_unstable();
    recovered.windows(2).for_each(|w| {
        assert_ne!(w[0], w[1], "duplicate receipt for client tx {}", w[0]);
    });
    let n = recovered.len();
    assert!(n <= image.accepted.len(), "recovery cannot invent accepts");
    let mut expected: Vec<u64> = stream[..n].iter().map(|t| t.id).collect();
    expected.sort_unstable();
    assert_eq!(recovered, expected, "recovered set is a submission prefix");

    // (2) Durably acked ⊆ recovered.
    for id in &image.acked {
        assert!(
            recovered.binary_search(id).is_ok(),
            "acked tx {id} lost by recovery (step {})",
            image.at_step
        );
    }

    // (3) Force-covered blocks recover committed with identical receipts.
    for seq in &image.durable_blocks {
        let rec_block = rec
            .outcomes
            .iter()
            .find(|o| o.block_seq == *seq)
            .unwrap_or_else(|| panic!("durable block {seq} vanished"));
        if let Some(orig) = image.delivered.iter().find(|o| o.block_seq == *seq) {
            assert_eq!(
                orig.receipts, rec_block.receipts,
                "receipt redelivery for block {seq} must be bit-identical"
            );
            assert_eq!(orig.deltas, rec_block.deltas);
        }
    }

    // (4) Balances are the naive wrapping fold of the recovered transfers.
    let mut ledger: BTreeMap<u64, u32> = BTreeMap::new();
    for tx in stream[..n].iter().filter(|t| !t.read_only) {
        let e = ledger.entry(tx.from).or_insert(0);
        *e = e.wrapping_sub(tx.amount);
        let e = ledger.entry(tx.to).or_insert(0);
        *e = e.wrapping_add(tx.amount);
    }
    let expected_balances: Vec<(u64, u32)> = ledger.into_iter().filter(|&(_, b)| b != 0).collect();
    assert_eq!(rec.balances, expected_balances, "ledger fold mismatch");

    // (5) Idempotence: recovering the recovered journal is a no-op.
    let again = recover(cfg, &rec.crash_image());
    assert_eq!(again.balances, rec.balances);
    assert_eq!(again.report.blocks_reexecuted, 0, "everything is committed");
    assert_eq!(again.report.tail_txs, 0, "no tail remains");
    assert_eq!(again.outcomes.len(), rec.outcomes.len());
    for (a, b) in again.outcomes.iter().zip(&rec.outcomes) {
        assert_eq!(a.block_seq, b.block_seq);
        assert_eq!(a.receipts, b.receipts);
    }
    n
}

/// Sweeps the crash plan over the whole run at stride `every_k`; returns
/// the number of crash points exercised.
fn sweep(policy: ForcePolicy, fault_seed: u64, every_k: u64) -> u64 {
    let cfg = sweep_cfg(policy, fault_seed);
    let stream = sweep_stream();
    let mut points = 0;
    let mut at_step = 0;
    loop {
        match run_stream_with_crash(cfg, &stream, Some(ServiceCrashPlan { at_step })) {
            CrashRun::Crashed(image) => {
                assert!(image.at_step <= at_step);
                check_crash_point(&cfg, &stream, &image);
                points += 1;
                at_step += every_k;
            }
            CrashRun::Completed(report) => {
                assert_eq!(report.txs, stream.len() as u64, "clean run serves all");
                assert_eq!(
                    report.acked_txs,
                    stream.len() as u64,
                    "clean shutdown force acks everything"
                );
                break;
            }
        }
    }
    assert!(points > 0, "the sweep must actually crash somewhere");
    points
}

#[test]
fn crash_sweep_eager_over_fault_seed_classes() {
    // Seed classes: 0 = fault-free device, 6/1/2/7 emphasize transient,
    // stall, reorder and torn behaviour respectively.
    for seed in [0u64, 6, 1, 2, 7] {
        sweep(ForcePolicy::Eager, seed, 9);
    }
}

#[test]
fn crash_sweep_group_commit_over_fault_seed_classes() {
    for seed in [0u64, 6, 1, 2, 7] {
        sweep(ForcePolicy::Group(4), seed, 9);
    }
}

#[test]
fn crash_sweep_lazy_over_fault_seed_classes() {
    // Lazy never forces, so the acked set stays empty until shutdown —
    // the oracle still holds (vacuously for (2), substantively for the
    // prefix and ledger checks).
    for seed in [0u64, 6, 1, 2, 7] {
        sweep(ForcePolicy::Lazy, seed, 9);
    }
}

#[test]
fn crash_sweep_with_shard_chaos_is_still_oracle_clean() {
    // Crash injection and shard storms composed: recovery re-executes
    // stormed blocks under the same salts, so receipts still regenerate
    // bit-identically.
    let mut cfg = sweep_cfg(ForcePolicy::Group(2), 6);
    cfg = cfg.with_chaos(ptm_service::ShardChaosConfig::new(77));
    let stream = sweep_stream();
    let mut points = 0;
    let mut at_step = 0;
    while let CrashRun::Crashed(image) =
        run_stream_with_crash(cfg, &stream, Some(ServiceCrashPlan { at_step }))
    {
        check_crash_point(&cfg, &stream, &image);
        points += 1;
        at_step += 17;
    }
    assert!(points > 0);
}

#[test]
fn clean_shutdown_report_carries_journal_stats() {
    let cfg = sweep_cfg(ForcePolicy::Eager, 0);
    let stream = sweep_stream();
    let CrashRun::Completed(report) = run_stream_with_crash(cfg, &stream, None) else {
        panic!("no crash plan, must complete");
    };
    let j = report.journal.expect("journaled run");
    assert_eq!(j.accept_records, stream.len() as u64);
    assert!(j.seal_records >= stream.len() as u64 / 8);
    assert!(
        j.commit_records >= j.seal_records,
        "every sealed block commits"
    );
    assert!(j.forces > 0);
}
