//! Fault-containment tests for the live service: bounded-queue
//! backpressure, worker-panic surfacing, and the admission edge cases
//! around the batch deadline and shutdown.

use ptm_service::{Service, ServiceConfig, ServiceError, ShardChaosConfig, SubmitError};
use ptm_workloads::{service::generate, ClientTx, ServiceWorkloadConfig};
use std::time::Duration;

fn stream(accounts: u64, txs: usize, seed: u64) -> Vec<ClientTx> {
    generate(&ServiceWorkloadConfig {
        accounts,
        skew: 0.9,
        seed,
        txs,
        read_only_pct: 20,
    })
}

#[test]
fn bounded_queue_sheds_with_a_backlog_sized_retry_hint() {
    let mut cfg = ServiceConfig::new(10_000, 1);
    cfg.max_batch = 64;
    // A long deadline keeps the worker from draining while we flood.
    cfg.batch_deadline = Duration::from_millis(250);
    cfg.queue_depth = 4;
    let txs = stream(10_000, 32, 3);
    let mut svc = Service::start(cfg);
    let mut admitted = 0u64;
    let mut shed = 0u64;
    for tx in &txs {
        match svc.submit(*tx) {
            Ok(()) => admitted += 1,
            Err(SubmitError::Busy { retry_after }) => {
                shed += 1;
                assert!(retry_after >= cfg.batch_deadline, "hint covers a drain");
            }
            Err(SubmitError::Closed) => panic!("service is open"),
        }
    }
    assert!(shed > 0, "flooding a depth-4 queue must shed");
    assert!(admitted >= 4, "the queue admits up to its depth");
    let report = svc.shutdown().expect("worker healthy");
    assert_eq!(report.txs, admitted, "every admitted tx got a receipt");
    assert_eq!(report.shed, shed, "the report counts exactly the sheds");
}

#[test]
fn worker_panic_surfaces_as_service_error_not_a_poisoned_join() {
    // A client tx outside the account space drives the shard router into
    // its out-of-range panic inside the worker thread — the deliberately
    // poisoned executor. Shutdown must hand back the panic message, not
    // propagate the panic into the caller.
    let mut cfg = ServiceConfig::new(100, 1);
    cfg.max_batch = 1; // seal-and-execute on the first accept
    let poison = ClientTx {
        id: 0,
        from: 500, // out of range 0..100
        to: 1,
        amount: 5,
        read_only: false,
    };
    let mut svc = Service::start(cfg);
    // The send itself succeeds; the worker dies executing the block.
    let _ = svc.submit(poison);
    match svc.shutdown() {
        Err(ServiceError::WorkerPanicked(msg)) => {
            assert!(
                msg.contains("out of range"),
                "panic message is preserved: {msg}"
            );
        }
        Ok(r) => panic!("worker should have died, got report {r:?}"),
    }
}

#[test]
fn submit_after_shutdown_is_closed_not_busy() {
    let cfg = ServiceConfig::new(1_000, 1);
    let mut svc = Service::start(cfg);
    let tx = ClientTx {
        id: 0,
        from: 1,
        to: 2,
        amount: 1,
        read_only: false,
    };
    // Steal the submit side the way shutdown does, then check the error.
    let report = svc.shutdown().expect("clean");
    assert_eq!(report.txs, 0);
    // A fresh service whose worker has exited still refuses cleanly.
    let mut svc2 = Service::start(cfg);
    let _ = svc2.submit(tx);
    let _ = svc2.shutdown().expect("clean");
}

#[test]
fn straggler_after_deadline_gets_its_own_block_exactly_one_receipt() {
    // Deadline-boundary edge: a transaction arriving after the deadline
    // already sealed the previous batch must open a new block — one
    // receipt, no drop, no duplicate.
    let mut cfg = ServiceConfig::new(1_000, 1);
    cfg.max_batch = 64;
    cfg.batch_deadline = Duration::from_millis(20);
    let mut svc = Service::start(cfg);
    let t0 = ClientTx {
        id: 0,
        from: 1,
        to: 2,
        amount: 5,
        read_only: false,
    };
    let t1 = ClientTx {
        id: 1,
        from: 3,
        to: 4,
        amount: 7,
        read_only: false,
    };
    svc.submit(t0).expect("open");
    let first = svc
        .outcomes()
        .recv_timeout(Duration::from_secs(30))
        .expect("deadline seals the singleton batch");
    assert_eq!(first.stats.txs, 1);
    assert_eq!(first.receipts[0].tx_id, 0);
    // The straggler arrives only after block 0 was sealed and delivered.
    svc.submit(t1).expect("open");
    let report = svc.shutdown().expect("worker healthy");
    assert_eq!(report.txs, 2, "no drop");
    assert_eq!(report.blocks, 2, "straggler opened its own block");
    let second = svc
        .outcomes()
        .recv_timeout(Duration::from_secs(30))
        .expect("second block outcome");
    assert_eq!(second.stats.txs, 1, "exactly one receipt for the straggler");
    assert_eq!(second.receipts[0].tx_id, 1);
    assert!(second.block_seq > first.block_seq);
}

#[test]
fn shutdown_racing_a_partial_batch_issues_exactly_one_receipt_each() {
    // Shutdown-vs-partial-batch edge: close the submit side while a
    // non-empty partial batch sits under the deadline. The final flush
    // must serve it — exactly one receipt per accepted tx.
    for trial in 0..8u64 {
        let mut cfg = ServiceConfig::new(1_000, 2);
        cfg.max_batch = 64; // never reached
        cfg.batch_deadline = Duration::from_millis(200); // never fires
        let txs = stream(1_000, 5, trial);
        let mut svc = Service::start(cfg);
        for tx in &txs {
            svc.submit(*tx).expect("open");
        }
        // Race: shutdown immediately, while the batch is (probably) still
        // filling.
        let report = svc.shutdown().expect("worker healthy");
        assert_eq!(report.txs, 5, "trial {trial}: no drop");
        let mut ids: Vec<u64> = Vec::new();
        while let Ok(outcome) = svc.outcomes().try_recv() {
            ids.extend(outcome.receipts.iter().map(|r| r.tx_id));
        }
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4], "trial {trial}: exactly once");
    }
}

#[test]
fn stormed_service_degrades_but_serves_everything() {
    // End-to-end chaos through the live worker: storms on every shard,
    // every block. The service completes, counts its degradation, and
    // the ledger still balances.
    let mut cfg = ServiceConfig::new(2_000, 2);
    cfg.max_batch = 32;
    cfg = cfg.with_chaos(ShardChaosConfig::new(1234));
    let txs = stream(2_000, 128, 9);
    let mut svc = Service::start(cfg);
    for tx in &txs {
        svc.submit(*tx).expect("open");
    }
    let report = svc.shutdown().expect("storms never kill the worker");
    assert_eq!(report.txs, 128, "degraded, not dropped");
    let sum = report
        .balances
        .iter()
        .fold(0u32, |acc, &(_, b)| acc.wrapping_add(b));
    assert_eq!(sum, 0, "ledger conserved under storms");
}
