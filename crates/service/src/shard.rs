//! Key-range sharding of the account space.

use ptm_workloads::ClientTx;

/// Partitions accounts `0..accounts` into `shards` contiguous key ranges
/// of near-equal width.
///
/// Routing is a **pure function of the key**: `shard_of` reads nothing but
/// its arguments and the two immutable fields, so the same account always
/// lands on the same shard — within a block, across blocks, and across
/// service restarts. The map is also monotone (`a <= b` implies
/// `shard_of(a) <= shard_of(b)`), which is what makes the ranges
/// contiguous.
///
/// A transaction that touches accounts in two different ranges is a
/// *cross-shard* transaction. It is routed whole to the **owner shard of
/// its debited account** (`from`); see the crate docs for the consistency
/// limitation this implies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
    accounts: u64,
}

impl ShardMap {
    /// A map over `0..accounts` split into `shards` ranges.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero or there are fewer accounts than
    /// shards (an empty shard would make skew metrics meaningless).
    pub fn new(shards: usize, accounts: u64) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(
            accounts >= shards as u64,
            "need at least one account per shard ({accounts} accounts, {shards} shards)"
        );
        ShardMap { shards, accounts }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Size of the account space.
    pub fn accounts(&self) -> u64 {
        self.accounts
    }

    /// The shard owning `account`. Pure and total over `0..accounts`.
    ///
    /// # Panics
    ///
    /// Panics if `account` is out of range.
    pub fn shard_of(&self, account: u64) -> usize {
        assert!(
            account < self.accounts,
            "account {account} out of range 0..{}",
            self.accounts
        );
        // Widening to u128 keeps the product exact for any u64 account
        // space; the result is < shards by construction.
        ((account as u128 * self.shards as u128) / self.accounts as u128) as usize
    }

    /// The shard a client transaction executes on: the owner of its
    /// debited (or probed) account.
    pub fn owner(&self, tx: &ClientTx) -> usize {
        self.shard_of(tx.from)
    }

    /// Whether a transfer spans two shards' key ranges.
    pub fn is_cross_shard(&self, tx: &ClientTx) -> bool {
        !tx.read_only && self.shard_of(tx.from) != self.shard_of(tx.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_shards_and_respects_bounds() {
        let map = ShardMap::new(4, 1000);
        assert_eq!(map.shard_of(0), 0);
        assert_eq!(map.shard_of(999), 3);
        let mut seen = [false; 4];
        for a in 0..1000 {
            seen[map.shard_of(a)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn single_shard_owns_everything() {
        let map = ShardMap::new(1, 17);
        for a in 0..17 {
            assert_eq!(map.shard_of(a), 0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_account_is_refused() {
        ShardMap::new(2, 10).shard_of(10);
    }
}
