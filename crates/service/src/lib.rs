//! PTM-as-a-service: a sharded, batched transaction frontend over the
//! simulator.
//!
//! The simulator executes fixed per-thread programs; this crate turns it
//! into a *service*: a stream of bank/erc20-style client transactions
//! (from the Zipfian generator in `ptm_workloads::service`) is batched
//! into blocks under admission knobs (batch size, deadline), each block is
//! compiled into per-shard thread programs, executed on N independent
//! shard [`ptm_sim::Machine`]s — sequentially or through the speculative
//! epoch executor — and answered with ordered receipts plus per-block
//! stats (commits, aborts, shard skew, read-only fast-path hits).
//!
//! # Sharding and the cross-shard limitation
//!
//! Accounts partition into contiguous key ranges ([`ShardMap`]); routing
//! is a pure, monotone function of the account id. A transfer whose
//! `from` and `to` fall in different ranges is routed **whole** to the
//! owner shard of the debited account — both ledger words are
//! materialized in that shard's machine. Because transfers are expressed
//! as commutative wrapping `Rmw` deltas and every account word folds back
//! into one global balance table at block boundaries, **global balances
//! are exact** without any cross-shard commit protocol. What is *not*
//! provided is cross-shard isolation: two shards may update their images
//! of the same credited account concurrently within a block, and a reader
//! cannot observe both sides of a cross-shard transfer atomically
//! mid-block. There is deliberately no two-phase commit; the block
//! boundary is the global consistency point. See DESIGN.md (decision 23).
//!
//! # Determinism
//!
//! [`run_block`] is a pure function of `(config, block, balances)` up to
//! wall-clock stats, and the epoch executor is bit-identical to the
//! sequential loop, so `Sequential` and `Parallel` strategies produce
//! identical receipts — the service bench asserts this on every cell.
//!
//! # Fault tolerance
//!
//! The frontend is crash-recoverable and fault-isolated:
//!
//! * **Durable ingest journal** ([`crate::journal`]): accepts, seals and
//!   block commits are appended to a [`ptm_mem::logdev::LogDevice`]-backed
//!   journal under a [`ForcePolicy`]; acks become durable at force
//!   points, and [`recover`] replays the journal into the exact committed
//!   prefix — no phantom receipts, no lost acked transaction, idempotent
//!   receipt redelivery keyed by `(block_seq, client id)`.
//! * **Crash injection** ([`crate::pipeline`]): a step-indexed
//!   [`ServiceCrashPlan`] kills the pipeline at any accept/seal/execute/
//!   commit/fold boundary; the bench sweeps it against a committed-prefix
//!   oracle.
//! * **Shard fault isolation** ([`ShardChaosConfig`]): abort storms and
//!   resource squeezes hit single shards; a stalled or exhausted shard is
//!   retried under backoff with a doubling cycle budget and escalates to
//!   serial-irrevocable execution — degraded and counted, never a
//!   deadlocked pipeline.
//! * **Backpressure** ([`Service::submit`]): the submit queue is bounded;
//!   overload sheds with [`SubmitError::Busy`] and a backlog-sized
//!   `retry_after` hint.
//!
//! See DESIGN.md (decision 24).
//!
//! # Examples
//!
//! ```
//! use ptm_service::{Service, ServiceConfig, Strategy};
//! use ptm_workloads::{service::generate, ServiceWorkloadConfig};
//!
//! let cfg = ServiceConfig::new(100_000, 2).with_strategy(Strategy::Sequential);
//! let stream = generate(&ServiceWorkloadConfig {
//!     accounts: cfg.accounts,
//!     skew: 0.9,
//!     seed: 1,
//!     txs: 200,
//!     read_only_pct: 20,
//! });
//! let mut svc = Service::start(cfg);
//! for tx in &stream {
//!     svc.submit(*tx).expect("queue_depth covers the stream");
//! }
//! let report = svc.shutdown().expect("worker ran to completion");
//! assert_eq!(report.txs, 200);
//! ```

pub mod block;
pub mod config;
pub mod exec;
pub mod ingest;
pub mod journal;
pub mod pipeline;
pub mod shard;

pub use block::{fold_deltas, run_block, BlockOutcome, BlockStats, Receipt, ReceiptStatus};
pub use config::{JournalConfig, ServiceConfig, ShardChaosConfig, Strategy};
pub use exec::{ParallelExec, SequentialExec, TxExecutor, ValidateOnlyExec};
pub use ingest::{Service, ServiceError, ServiceReport, SubmitError};
pub use journal::{replay, Journal, JournalReplay, JournalStats, RecoveredBlock};
pub use pipeline::{
    recover, run_stream_with_crash, CrashRun, Crashed, Engine, RecoveryReport, ServiceCrashImage,
    ServiceCrashPlan, ServiceRecovery,
};
pub use ptm_core::durability::ForcePolicy;
pub use shard::ShardMap;

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_types::FastMap;
    use ptm_workloads::{service::generate, ClientTx, ServiceWorkloadConfig};

    fn stream(accounts: u64, txs: usize, seed: u64) -> Vec<ClientTx> {
        generate(&ServiceWorkloadConfig {
            accounts,
            skew: 0.9,
            seed,
            txs,
            read_only_pct: 20,
        })
    }

    #[test]
    fn sequential_and_parallel_receipts_are_bit_identical() {
        let block = stream(50_000, 300, 7);
        for shards in [1, 2, 4] {
            let cfg = ServiceConfig::new(50_000, shards);
            let balances = FastMap::default();
            let seq = run_block(&cfg.with_strategy(Strategy::Sequential), &block, &balances);
            let par = run_block(&cfg.with_strategy(Strategy::Parallel), &block, &balances);
            assert_eq!(seq.receipts, par.receipts, "shards={shards}");
            assert_eq!(seq.deltas, par.deltas, "shards={shards}");
            assert_eq!(seq.stats.commits, par.stats.commits, "shards={shards}");
            assert_eq!(seq.stats.aborts, par.stats.aborts, "shards={shards}");
        }
    }

    #[test]
    fn every_client_tx_gets_exactly_one_receipt() {
        let block = stream(10_000, 250, 3);
        let cfg = ServiceConfig::new(10_000, 4);
        let out = run_block(&cfg, &block, &FastMap::default());
        assert_eq!(out.receipts.len(), block.len());
        for (i, r) in out.receipts.iter().enumerate() {
            assert_eq!(r.tx_id, i as u64, "receipts sorted by client id");
        }
        let map = ShardMap::new(4, 10_000);
        for (tx, r) in block.iter().zip(&out.receipts) {
            assert_eq!(r.shard, map.owner(tx));
            match r.status {
                ReceiptStatus::ReadOnly { .. } => assert!(tx.read_only),
                ReceiptStatus::Committed { .. } => assert!(!tx.read_only),
                ReceiptStatus::Validated { .. } => panic!("not a validate-only run"),
            }
        }
    }

    #[test]
    fn block_deltas_conserve_the_ledger() {
        // Every transfer debits and credits the same amount, so the net
        // wrapping sum of all deltas is zero.
        let block = stream(5_000, 400, 11);
        let cfg = ServiceConfig::new(5_000, 2);
        let out = run_block(&cfg, &block, &FastMap::default());
        let sum = out
            .deltas
            .iter()
            .fold(0u32, |acc, &(_, d)| acc.wrapping_add(d));
        assert_eq!(sum, 0);
        assert!(!out.deltas.is_empty());
    }

    #[test]
    fn sharded_execution_matches_single_shard_balances() {
        // Sharding changes the schedule, not the ledger: fold the deltas
        // from a 1-shard and a 4-shard run and compare.
        let block = stream(8_000, 300, 13);
        let mut one = FastMap::default();
        let mut four = FastMap::default();
        let o1 = run_block(&ServiceConfig::new(8_000, 1), &block, &one);
        let o4 = run_block(&ServiceConfig::new(8_000, 4), &block, &four);
        fold_deltas(&mut one, &o1.deltas);
        fold_deltas(&mut four, &o4.deltas);
        let mut a: Vec<_> = one.into_iter().collect();
        let mut b: Vec<_> = four.into_iter().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn validate_only_touches_nothing() {
        let block = stream(5_000, 100, 5);
        let cfg = ServiceConfig::new(5_000, 2).with_strategy(Strategy::ValidateOnly);
        let out = run_block(&cfg, &block, &FastMap::default());
        assert!(out.deltas.is_empty());
        assert_eq!(out.stats.commits, 0);
        assert_eq!(out.receipts.len(), block.len());
        for r in &out.receipts {
            assert!(matches!(
                r.status,
                ReceiptStatus::Validated { ok: true } | ReceiptStatus::ReadOnly { .. }
            ));
        }
    }

    #[test]
    fn read_only_probes_see_prior_block_balances() {
        let accounts = 1_000u64;
        let cfg = ServiceConfig::new(accounts, 2);
        // Block 1: one transfer 3 -> 7 of 50.
        let b1 = [ClientTx {
            id: 0,
            from: 3,
            to: 7,
            amount: 50,
            read_only: false,
        }];
        let mut balances = FastMap::default();
        let o1 = run_block(&cfg, &b1, &balances);
        fold_deltas(&mut balances, &o1.deltas);
        assert_eq!(balances.get(&7), Some(&50));
        assert_eq!(balances.get(&3), Some(&50u32.wrapping_neg()));
        // Block 2: probe both sides.
        let b2 = [
            ClientTx {
                id: 1,
                from: 7,
                to: 7,
                amount: 0,
                read_only: true,
            },
            ClientTx {
                id: 2,
                from: 3,
                to: 3,
                amount: 0,
                read_only: true,
            },
        ];
        let o2 = run_block(&cfg, &b2, &balances);
        assert_eq!(
            o2.receipts[0].status,
            ReceiptStatus::ReadOnly { balance: 50 }
        );
        assert_eq!(
            o2.receipts[1].status,
            ReceiptStatus::ReadOnly {
                balance: 50u32.wrapping_neg()
            }
        );
        assert_eq!(o2.stats.read_only_hits, 2);
    }

    #[test]
    fn ingest_loop_batches_by_size_and_flushes_on_shutdown() {
        let mut cfg = ServiceConfig::new(10_000, 2);
        cfg.max_batch = 64;
        cfg.batch_deadline = std::time::Duration::from_millis(50);
        let txs = stream(10_000, 200, 17);
        let mut svc = Service::start(cfg);
        for tx in &txs {
            assert_eq!(svc.submit(*tx), Ok(()));
        }
        let report = svc.shutdown().expect("worker healthy");
        assert_eq!(report.txs, 200);
        assert!(report.blocks >= 200 / 64, "blocks: {}", report.blocks);
        assert!(report.commits > 0);
        // Ledger conserved service-wide: wrapping sum of final balances
        // is zero.
        let sum = report
            .balances
            .iter()
            .fold(0u32, |acc, &(_, b)| acc.wrapping_add(b));
        assert_eq!(sum, 0);
    }

    #[test]
    fn ingest_outcomes_stream_in_block_order() {
        let mut cfg = ServiceConfig::new(4_000, 1);
        cfg.max_batch = 50;
        cfg.batch_deadline = std::time::Duration::from_millis(50);
        let txs = stream(4_000, 100, 23);
        let mut svc = Service::start(cfg);
        for tx in &txs {
            assert_eq!(svc.submit(*tx), Ok(()));
        }
        let first = svc
            .outcomes()
            .recv_timeout(std::time::Duration::from_secs(30))
            .expect("first block outcome");
        assert_eq!(first.stats.txs, 50);
        assert_eq!(first.block_seq, 0);
        assert_eq!(first.receipts.first().map(|r| r.tx_id), Some(0));
        let report = svc.shutdown().expect("worker healthy");
        assert_eq!(report.blocks, 2);
    }
}
