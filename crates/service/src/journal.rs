//! The durable ingest journal: accepted client transactions, sealed-block
//! boundaries and executed-block redo deltas, framed with the machine
//! log's checksummed record format and written through the same
//! write-behind [`LogDevice`].
//!
//! # Record stream
//!
//! The journal is an ARIES-style redo log of the frontend pipeline:
//!
//! * [`LogRecordKind::SvcAccept`] — one per admitted client transaction,
//!   appended *before* the ack. The payload is the full [`ClientTx`], so
//!   replay can rebuild every block's input.
//! * [`LogRecordKind::SvcSeal`] — the preceding `count` un-sealed accepts
//!   became block `seq`. Appended before the block executes.
//! * [`LogRecordKind::SvcCommit`] — block `seq` executed; the payload
//!   carries its net ledger deltas (chunked when a block touches more
//!   accounts than one frame holds). A block is **committed** iff all its
//!   commit chunks sit in the scan-valid prefix; this is the block's
//!   durability point when forced.
//!
//! # Force policy and ack semantics
//!
//! [`ForcePolicy`] decides when block commits force a flush barrier
//! (`Eager` = every block, `Group(n)` = every n-th, `Lazy` = never). A
//! force drains the device's in-flight queue, so every record appended
//! before it — accepts included — lands in the scan-valid prefix of any
//! later crash image. Acks ride the same barrier: a client id moves from
//! *pending* to *durably acked* at the first force after its accept
//! record, and the crash oracle holds the service to exactly that set —
//! an acked transaction must survive recovery; a pending one may be lost
//! with the tail. Under `Lazy` nothing is ever durably acked, which is
//! the policy's documented trade.
//!
//! Device refusals are absorbed here the way [`DurableLog`] absorbs them:
//! transient errors retry under exponential backoff, stall windows are
//! waited out, both on the journal's logical cycle clock, bounded by
//! [`MAX_LOG_RETRIES`].
//!
//! [`DurableLog`]: ptm_core::durability::DurableLog

use crate::config::JournalConfig;
use ptm_core::durability::{
    encode_record, scan_records, ForcePolicy, LogRecordKind, MAX_LOG_RETRIES,
};
use ptm_mem::logdev::{LogAppendError, LogDevStats, LogDevice, LogImage};
use ptm_types::{Cycle, TxId};
use ptm_workloads::ClientTx;

/// One folded ledger delta: `(account id, wrapping u32 delta)`.
type AccountDelta = (u64, u32);

/// A decoded commit chunk: `(chunk index, chunk count, deltas)`.
type CommitChunk = (u16, u16, Vec<AccountDelta>);

/// Base cycles of the exponential backoff after a transient append error.
const BACKOFF_BASE: Cycle = 32;

/// Net ledger deltas per commit-record chunk. One frame's payload holds
/// up to `(u16::MAX - 8) / 12 = 5460`; staying well under keeps frames
/// comfortably inside one device segment.
const COMMIT_CHUNK: usize = 4096;

/// Caller-side journal counters (device counters live in [`LogDevStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Accept records appended.
    pub accept_records: u64,
    /// Seal records appended.
    pub seal_records: u64,
    /// Commit-record chunks appended.
    pub commit_records: u64,
    /// Forces issued by the policy (plus the shutdown force).
    pub forces: u64,
    /// Client transactions durably acked (accept record behind a force).
    pub acked_txs: u64,
    /// Transient-error retries performed.
    pub retries: u64,
    /// Cycles spent in exponential backoff after transient errors.
    pub backoff_cycles: u64,
    /// Appends that waited out a device stall window.
    pub throttle_events: u64,
    /// Cycles spent throttled on device stalls.
    pub throttle_cycles: u64,
    /// Worst attempts needed for one append — the bounded-retry proof:
    /// never exceeds [`MAX_LOG_RETRIES`].
    pub max_append_attempts: u32,
}

/// The service's durable ingest journal: a [`LogDevice`] plus the force
/// policy, a logical cycle clock, and the pending→acked accept tracking
/// the crash oracle checks.
#[derive(Debug, Clone)]
pub struct Journal {
    policy: ForcePolicy,
    dev: LogDevice,
    /// Logical cycle clock: advances on every append, backoff and stall
    /// wait, so the device's latency/fault model sees monotone time.
    now: Cycle,
    /// Records appended so far (journal sequence numbers `0..records`).
    records: u64,
    /// Records covered by the last force: every record with a lower
    /// sequence number is in the scan-valid prefix of any crash image.
    forced_records: u64,
    /// Block commits since the last force (group commit).
    commits_since_force: u32,
    /// Client ids accepted since the last force, in accept order.
    pending_acks: Vec<u64>,
    /// Client ids durably acked, in accept order.
    acked: Vec<u64>,
    stats: JournalStats,
}

impl Journal {
    /// Opens a fresh journal.
    pub fn new(cfg: JournalConfig) -> Self {
        Journal {
            policy: cfg.policy,
            dev: LogDevice::new(cfg.dev, cfg.faults),
            now: 0,
            records: 0,
            forced_records: 0,
            commits_since_force: 0,
            pending_acks: Vec::new(),
            acked: Vec::new(),
            stats: JournalStats::default(),
        }
    }

    /// Reopens a journal over the scan-valid prefix of a crash image, as
    /// [`replay`] decoded it. The device resumes its append offsets and
    /// fault-decision stream past the recovered records, so recovery's own
    /// appends see the same fault model the original run did.
    pub fn reopen(cfg: JournalConfig, valid_prefix: Vec<u8>, records: u64) -> Self {
        Journal {
            policy: cfg.policy,
            dev: LogDevice::reopen(cfg.dev, cfg.faults, valid_prefix, records),
            now: 0,
            records,
            // The prefix survived the crash, which is the only durability
            // a force ever promises.
            forced_records: records,
            commits_since_force: 0,
            pending_acks: Vec::new(),
            acked: Vec::new(),
            stats: JournalStats::default(),
        }
    }

    /// The active force policy.
    pub fn policy(&self) -> ForcePolicy {
        self.policy
    }

    /// Caller-side counters.
    pub fn stats(&self) -> &JournalStats {
        &self.stats
    }

    /// Device counters.
    pub fn dev_stats(&self) -> &LogDevStats {
        self.dev.stats()
    }

    /// Client ids durably acked so far, in accept order.
    pub fn acked(&self) -> &[u64] {
        &self.acked
    }

    /// The logical cycle clock.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Journals one accepted client transaction. The ack it backs becomes
    /// durable at the next force.
    pub fn accept(&mut self, tx: &ClientTx) {
        let rec = encode_record(
            LogRecordKind::SvcAccept,
            TxId(tx.id),
            &encode_accept_payload(tx),
        );
        self.stats.accept_records += 1;
        self.append_retrying(&rec);
        self.pending_acks.push(tx.id);
    }

    /// Journals a seal: the preceding `count` un-sealed accepts became
    /// block `block_seq`.
    pub fn seal(&mut self, block_seq: u64, count: u32) {
        let rec = encode_record(
            LogRecordKind::SvcSeal,
            TxId(block_seq),
            &count.to_le_bytes(),
        );
        self.stats.seal_records += 1;
        self.append_retrying(&rec);
    }

    /// Journals block `block_seq`'s execution with its net ledger deltas
    /// (the redo payload recovery folds instead of re-folding a
    /// re-execution), then forces per policy.
    pub fn commit(&mut self, block_seq: u64, deltas: &[(u64, u32)]) {
        let chunks = deltas.chunks(COMMIT_CHUNK).count().max(1) as u16;
        for (i, chunk) in split_chunks(deltas).enumerate() {
            let rec = encode_record(
                LogRecordKind::SvcCommit,
                TxId(block_seq),
                &encode_commit_payload(i as u16, chunks, chunk),
            );
            self.stats.commit_records += 1;
            self.append_retrying(&rec);
        }
        self.commits_since_force += 1;
        let force = match self.policy {
            ForcePolicy::Eager => true,
            ForcePolicy::Lazy => false,
            ForcePolicy::Group(n) => self.commits_since_force >= n,
        };
        if force {
            self.force();
        }
    }

    /// Forces the device: drains in-flight appends behind a flush barrier
    /// and promotes every pending accept to durably acked.
    pub fn force(&mut self) {
        self.commits_since_force = 0;
        self.stats.forces += 1;
        let wait = self.dev.force(self.now);
        self.now += wait + 1;
        self.forced_records = self.records;
        self.acked.append(&mut self.pending_acks);
        self.stats.acked_txs = self.acked.len() as u64;
    }

    /// Records (by journal sequence number) covered by the last force.
    pub fn forced_records(&self) -> u64 {
        self.forced_records
    }

    /// Records appended so far; the next append gets this sequence number.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The crash-boundary device image: the durable prefix plus whatever
    /// the fault plan decides about in-flight appends (early, torn, lost).
    pub fn crash_image(&self) -> LogImage {
        self.dev.crash_image(self.now)
    }

    /// Appends one framed record, absorbing transient errors (exponential
    /// backoff) and stall windows (wait out the deadline) on the logical
    /// clock. Bounded: panics past [`MAX_LOG_RETRIES`] attempts, which the
    /// device's fault bounds make unreachable.
    fn append_retrying(&mut self, record: &[u8]) {
        let mut attempts: u32 = 0;
        loop {
            attempts += 1;
            assert!(
                attempts <= MAX_LOG_RETRIES,
                "journal append did not settle within {MAX_LOG_RETRIES} attempts — the \
                 device's transient/stall bounds guarantee this cannot happen"
            );
            match self.dev.append(record, self.now) {
                Ok(wait) => {
                    self.now += wait + 1;
                    self.records += 1;
                    self.stats.max_append_attempts = self.stats.max_append_attempts.max(attempts);
                    return;
                }
                Err(LogAppendError::Transient) => {
                    let backoff = BACKOFF_BASE << (attempts - 1).min(6);
                    self.stats.retries += 1;
                    self.stats.backoff_cycles += backoff;
                    self.now += backoff;
                }
                Err(LogAppendError::Stalled { until }) => {
                    let wait = until.saturating_sub(self.now).max(1);
                    self.stats.throttle_events += 1;
                    self.stats.throttle_cycles += wait;
                    self.now += wait;
                }
            }
        }
    }
}

/// Yields the delta chunks of a commit record; an empty delta list still
/// yields one (empty) chunk so every executed block leaves a commit
/// record.
fn split_chunks(deltas: &[(u64, u32)]) -> impl Iterator<Item = &[(u64, u32)]> {
    let empty = deltas.is_empty();
    deltas
        .chunks(COMMIT_CHUNK)
        .chain(std::iter::once([].as_slice()).filter(move |_| empty))
}

/// Encodes an accept payload: the full client transaction.
fn encode_accept_payload(tx: &ClientTx) -> Vec<u8> {
    let mut out = Vec::with_capacity(29);
    out.extend_from_slice(&tx.id.to_le_bytes());
    out.extend_from_slice(&tx.from.to_le_bytes());
    out.extend_from_slice(&tx.to.to_le_bytes());
    out.extend_from_slice(&tx.amount.to_le_bytes());
    out.push(tx.read_only as u8);
    out
}

/// Decodes an accept payload; `None` if malformed.
fn decode_accept_payload(bytes: &[u8]) -> Option<ClientTx> {
    if bytes.len() != 29 {
        return None;
    }
    Some(ClientTx {
        id: u64::from_le_bytes(bytes[0..8].try_into().ok()?),
        from: u64::from_le_bytes(bytes[8..16].try_into().ok()?),
        to: u64::from_le_bytes(bytes[16..24].try_into().ok()?),
        amount: u32::from_le_bytes(bytes[24..28].try_into().ok()?),
        read_only: bytes[28] != 0,
    })
}

/// Encodes one commit-record chunk: chunk index, chunk count, delta count,
/// then the `(account, wrapping delta)` pairs.
fn encode_commit_payload(chunk: u16, chunks: u16, deltas: &[(u64, u32)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + deltas.len() * 12);
    out.extend_from_slice(&chunk.to_le_bytes());
    out.extend_from_slice(&chunks.to_le_bytes());
    out.extend_from_slice(&(deltas.len() as u32).to_le_bytes());
    for &(acct, d) in deltas {
        out.extend_from_slice(&acct.to_le_bytes());
        out.extend_from_slice(&d.to_le_bytes());
    }
    out
}

/// Decodes one commit-record chunk; `None` if malformed.
fn decode_commit_payload(bytes: &[u8]) -> Option<CommitChunk> {
    if bytes.len() < 8 {
        return None;
    }
    let chunk = u16::from_le_bytes(bytes[0..2].try_into().ok()?);
    let chunks = u16::from_le_bytes(bytes[2..4].try_into().ok()?);
    let count = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
    if bytes.len() != 8 + count * 12 {
        return None;
    }
    let mut deltas = Vec::with_capacity(count);
    for i in 0..count {
        let at = 8 + i * 12;
        deltas.push((
            u64::from_le_bytes(bytes[at..at + 8].try_into().ok()?),
            u32::from_le_bytes(bytes[at + 8..at + 12].try_into().ok()?),
        ));
    }
    Some((chunk, chunks, deltas))
}

/// One block reconstructed from the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredBlock {
    /// Block sequence number from its seal record.
    pub seq: u64,
    /// The client transactions sealed into it, in accept order.
    pub txs: Vec<ClientTx>,
    /// Its journaled net ledger deltas, if all commit chunks survived;
    /// `None` = sealed-but-uncommitted, recovery must (re-)execute it.
    pub deltas: Option<Vec<(u64, u32)>>,
}

/// What [`replay`] reconstructs from a journal crash image.
#[derive(Debug, Clone, Default)]
pub struct JournalReplay {
    /// Blocks in seal order; committed ones carry their deltas.
    pub blocks: Vec<RecoveredBlock>,
    /// Accepts after the last seal — the tail recovery re-seals.
    pub tail: Vec<ClientTx>,
    /// One past the highest sealed block sequence number.
    pub next_block_seq: u64,
    /// Scan-valid records (the reopen sequence base).
    pub records: u64,
    /// Byte length of the scan-valid prefix (the reopen image).
    pub valid_len: usize,
    /// Frames discarded at the scan cut.
    pub records_discarded: u64,
    /// Discarded frames that failed their checksum (torn appends).
    pub checksum_mismatches: u64,
    /// Bytes past the valid prefix.
    pub bytes_discarded: u64,
    /// Structurally valid frames whose journal-level payload or ordering
    /// was malformed; replay stops at the first one (bounded, like the
    /// scan itself).
    pub malformed_records: u64,
}

/// Replays a journal image: scans the checksummed frames (bounded, torn
/// tails discarded) and folds the record stream back into blocks. The
/// valid prefix is cut at the last record that *made sense* — a frame
/// that validates but decodes to an impossible journal state (a seal
/// counting more accepts than exist, an orphan commit) truncates there,
/// exactly like a torn frame would.
pub fn replay(bytes: &[u8]) -> JournalReplay {
    let scan = scan_records(bytes);
    let mut out = JournalReplay {
        records_discarded: scan.records_discarded,
        checksum_mismatches: scan.checksum_mismatches,
        bytes_discarded: scan.bytes_discarded,
        ..JournalReplay::default()
    };
    let mut pos = 0usize; // bytes consumed by records replayed so far
    let mut pending_chunks: Vec<(u64, u16, Vec<AccountDelta>)> = Vec::new();
    for rec in &scan.records {
        let framed = ptm_core::durability::RECORD_HEADER
            + rec.payload.len()
            + ptm_core::durability::RECORD_TRAILER;
        let ok = match rec.kind {
            LogRecordKind::SvcAccept => match decode_accept_payload(&rec.payload) {
                Some(tx) => {
                    out.tail.push(tx);
                    true
                }
                None => false,
            },
            LogRecordKind::SvcSeal => {
                let count = rec
                    .payload
                    .as_slice()
                    .try_into()
                    .map(u32::from_le_bytes)
                    .ok();
                match count {
                    Some(count) if (count as usize) <= out.tail.len() && count > 0 => {
                        let at = out.tail.len() - count as usize;
                        out.blocks.push(RecoveredBlock {
                            seq: rec.tx.0,
                            txs: out.tail.split_off(at),
                            deltas: None,
                        });
                        out.next_block_seq = out.next_block_seq.max(rec.tx.0 + 1);
                        true
                    }
                    _ => false,
                }
            }
            LogRecordKind::SvcCommit => match decode_commit_payload(&rec.payload) {
                Some((chunk, chunks, deltas)) if chunk < chunks => {
                    if chunk == 0 {
                        // A fresh run abandons any partial one: recovery
                        // re-commits a block whose first commit run was cut
                        // by the crash, and the stale chunks must not poison
                        // the re-commit.
                        pending_chunks.clear();
                    }
                    let seq = rec.tx.0;
                    let known = out.blocks.iter().any(|b| b.seq == seq);
                    let coherent = known
                        && pending_chunks.len() == chunk as usize
                        && pending_chunks
                            .iter()
                            .all(|&(s, c, _)| s == seq && c == chunks);
                    if coherent {
                        pending_chunks.push((seq, chunks, deltas));
                        if pending_chunks.len() == chunks as usize {
                            let mut all = Vec::new();
                            for (_, _, mut d) in pending_chunks.drain(..) {
                                all.append(&mut d);
                            }
                            let block = out
                                .blocks
                                .iter_mut()
                                .find(|b| b.seq == seq)
                                .expect("checked above");
                            block.deltas = Some(all);
                        }
                        true
                    } else {
                        false
                    }
                }
                _ => false,
            },
            // A machine-level record in the service journal is a framing
            // confusion upstream; stop trusting the stream here.
            _ => false,
        };
        if !ok {
            out.malformed_records += 1;
            break;
        }
        pos += framed;
        out.records += 1;
    }
    // An incomplete commit-chunk run is not a committed block; the chunks
    // already counted as replayed records stay in the prefix (they are
    // valid frames), the block simply re-executes.
    out.valid_len = pos;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_mem::logdev::LogFaultPlan;

    fn tx(id: u64) -> ClientTx {
        ClientTx {
            id,
            from: id * 3 + 1,
            to: id * 7 + 2,
            amount: 10 + id as u32,
            read_only: id.is_multiple_of(5) && id > 0,
        }
    }

    #[test]
    fn accept_payload_round_trips() {
        for id in 0..8 {
            let t = tx(id);
            assert_eq!(decode_accept_payload(&encode_accept_payload(&t)), Some(t));
        }
        assert_eq!(decode_accept_payload(&[0; 10]), None);
    }

    #[test]
    fn commit_payload_round_trips_and_chunks() {
        let deltas: Vec<(u64, u32)> = (0..10_000u64).map(|a| (a, a as u32)).collect();
        let mut j = Journal::new(JournalConfig::zero_cost_eager());
        for t in (0..3).map(tx) {
            j.accept(&t);
        }
        j.seal(0, 3);
        j.commit(0, &deltas);
        assert_eq!(j.stats().commit_records, 3, "10k deltas span 3 chunks");
        let rep = replay(&j.crash_image().bytes);
        assert_eq!(rep.blocks.len(), 1);
        assert_eq!(rep.blocks[0].deltas.as_deref(), Some(deltas.as_slice()));
        assert_eq!(rep.malformed_records, 0);
    }

    #[test]
    fn journal_round_trips_blocks_and_tail() {
        let mut j = Journal::new(JournalConfig::zero_cost_eager());
        for t in (0..5).map(tx) {
            j.accept(&t);
        }
        j.seal(0, 5);
        j.commit(0, &[(1, 5), (2, 7u32.wrapping_neg())]);
        for t in (5..7).map(tx) {
            j.accept(&t);
        }
        let rep = replay(&j.crash_image().bytes);
        assert_eq!(rep.blocks.len(), 1);
        assert_eq!(rep.blocks[0].seq, 0);
        assert_eq!(rep.blocks[0].txs, (0..5).map(tx).collect::<Vec<_>>());
        assert_eq!(
            rep.blocks[0].deltas,
            Some(vec![(1, 5), (2, 7u32.wrapping_neg())])
        );
        assert_eq!(rep.tail, (5..7).map(tx).collect::<Vec<_>>());
        assert_eq!(rep.next_block_seq, 1);
        assert_eq!(rep.records, j.records());
    }

    #[test]
    fn acks_become_durable_only_at_forces() {
        let cfg = JournalConfig::zero_cost_eager().with_policy(ForcePolicy::Group(2));
        let mut j = Journal::new(cfg);
        for t in (0..4).map(tx) {
            j.accept(&t);
        }
        j.seal(0, 4);
        j.commit(0, &[]);
        assert!(j.acked().is_empty(), "group(2): first commit doesn't force");
        for t in (4..6).map(tx) {
            j.accept(&t);
        }
        j.seal(1, 2);
        j.commit(1, &[]);
        assert_eq!(j.acked(), &[0, 1, 2, 3, 4, 5], "second commit forces all");
        assert_eq!(j.stats().acked_txs, 6);
        assert_eq!(j.stats().forces, 1);
    }

    #[test]
    fn empty_block_still_leaves_a_commit_record() {
        let mut j = Journal::new(JournalConfig::zero_cost_eager());
        j.accept(&tx(0));
        j.seal(0, 1);
        j.commit(0, &[]);
        let rep = replay(&j.crash_image().bytes);
        assert_eq!(rep.blocks[0].deltas, Some(vec![]));
    }

    #[test]
    fn replay_truncates_at_an_orphan_commit() {
        let mut j = Journal::new(JournalConfig::zero_cost_eager());
        j.accept(&tx(0));
        j.seal(0, 1);
        // A commit for a block never sealed: structurally valid frame,
        // journal-level nonsense. Replay must stop there.
        let rec = encode_record(
            LogRecordKind::SvcCommit,
            TxId(99),
            &encode_commit_payload(0, 1, &[(5, 5)]),
        );
        j.append_retrying(&rec);
        j.force();
        let rep = replay(&j.crash_image().bytes);
        assert_eq!(rep.blocks.len(), 1);
        assert_eq!(rep.blocks[0].deltas, None, "orphan commit not applied");
        assert_eq!(rep.malformed_records, 1);
        assert_eq!(rep.records, 2, "prefix ends before the orphan");
    }

    #[test]
    fn faulted_device_appends_stay_bounded() {
        for seed in [1u64, 2, 6, 7, 9, 13] {
            let cfg = JournalConfig::zero_cost_eager().with_faults(LogFaultPlan::from_seed(seed));
            let mut j = Journal::new(cfg);
            for t in (0..32).map(tx) {
                j.accept(&t);
            }
            j.seal(0, 32);
            j.commit(0, &[(1, 1)]);
            assert!(
                j.stats().max_append_attempts <= MAX_LOG_RETRIES,
                "seed {seed}"
            );
            assert_eq!(j.stats().accept_records, 32);
            // Everything before the eager force is scan-valid.
            let rep = replay(&j.crash_image().bytes);
            assert_eq!(rep.blocks.len(), 1, "seed {seed}");
            assert_eq!(rep.blocks[0].txs.len(), 32, "seed {seed}");
            assert!(rep.blocks[0].deltas.is_some(), "seed {seed}");
        }
    }

    #[test]
    fn reopened_journal_resumes_past_the_recovered_prefix() {
        let cfg = JournalConfig::zero_cost_eager();
        let mut j = Journal::new(cfg);
        for t in (0..3).map(tx) {
            j.accept(&t);
        }
        j.seal(0, 3);
        j.commit(0, &[(1, 2)]);
        let img = j.crash_image();
        let rep = replay(&img.bytes);
        let mut j2 = Journal::reopen(cfg, img.bytes[..rep.valid_len].to_vec(), rep.records);
        assert_eq!(j2.forced_records(), rep.records, "prefix counts as forced");
        j2.accept(&tx(3));
        j2.seal(1, 1);
        j2.commit(1, &[(9, 9)]);
        let rep2 = replay(&j2.crash_image().bytes);
        assert_eq!(rep2.blocks.len(), 2);
        assert_eq!(rep2.blocks[1].deltas, Some(vec![(9, 9)]));
        assert_eq!(rep2.next_block_seq, 2);
    }
}
