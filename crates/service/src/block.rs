//! Block compilation and execution: a batch of client transactions
//! becomes per-shard thread programs, runs on fresh simulator machines,
//! and folds back into the service's balance table.

use crate::config::{ServiceConfig, ShardChaosConfig, Strategy};
use crate::shard::ShardMap;
use ptm_sim::{run, run_parallel, run_with_faults, FaultPlan, Machine, Op, ThreadProgram};
use ptm_types::{Cycle, FastMap, ProcessId, ThreadId, VirtAddr, BLOCK_SIZE, PAGE_SIZE, WORD_SIZE};
use ptm_workloads::ClientTx;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Base virtual address of the ledger words inside a shard machine.
const DATA_BASE: u64 = 0x10_000;

/// The service's answer for one client transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Receipt {
    /// Echo of [`ClientTx::id`].
    pub tx_id: u64,
    /// The shard that served the request.
    pub shard: usize,
    /// What happened.
    pub status: ReceiptStatus,
}

/// Outcome of one client transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiptStatus {
    /// The transfer committed on its shard machine. `seq` is its position
    /// in the shard's commit order, `at` the simulated commit cycle —
    /// together they pin the execution schedule, which is what the
    /// Sequential ≡ Parallel bit-identity check compares.
    Committed {
        /// Position in the shard's commit order.
        seq: u64,
        /// Simulated commit cycle.
        at: Cycle,
    },
    /// A read-only balance probe answered from the service's balance
    /// table without entering any shard machine (the frontend's
    /// read-only fast path).
    ReadOnly {
        /// The balance observed as of the previous block boundary.
        balance: u32,
    },
    /// Admission-checked only (the `ValidateOnly` strategy): `ok` is the
    /// well-formedness verdict, nothing executed.
    Validated {
        /// Whether the transaction passed admission checks.
        ok: bool,
    },
}

/// Per-block statistics, one entry of the bench's time series.
#[derive(Debug, Clone, Default)]
pub struct BlockStats {
    /// Client transactions in the block.
    pub txs: usize,
    /// Transfers that entered shard machines.
    pub transfers: usize,
    /// Read-only probes answered from the balance table.
    pub read_only_hits: u64,
    /// Transfers whose `from`/`to` fall in different key ranges (executed
    /// whole on the `from` owner; see crate docs).
    pub cross_shard: u64,
    /// Committed simulator transactions, summed over shards.
    pub commits: u64,
    /// Aborted-and-retried simulator transactions, summed over shards.
    pub aborts: u64,
    /// Transfers routed to each shard.
    pub shard_txs: Vec<usize>,
    /// Load imbalance: max shard load over mean shard load (1.0 = even).
    pub shard_skew: f64,
    /// Simulated cycles of the slowest shard machine.
    pub max_shard_cycles: Cycle,
    /// Host wall time spent executing the block.
    pub wall_ns: u64,
    /// Shard attempts retried after a fault (stall or exhaustion).
    pub shard_retries: u64,
    /// Shard attempts that blew their cycle budget (treated as a stalled
    /// shard: backoff, doubled budget, retry).
    pub shard_stalls: u64,
    /// Shards that exhausted their retries and fell back to
    /// serial-irrevocable execution.
    pub shard_escalations: u64,
    /// Simulated cycles spent in inter-attempt backoff.
    pub shard_backoff_cycles: Cycle,
}

impl BlockStats {
    /// Aborts per attempted simulator transaction.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.commits + self.aborts;
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }
}

/// Everything a block execution produces: receipts in client-id order,
/// stats, and the net ledger deltas to fold into the balance table.
#[derive(Debug, Clone)]
pub struct BlockOutcome {
    /// Position of the block in the service's seal order. [`run_block`]
    /// itself leaves it `0`; the pipeline stamps it, and together with
    /// [`Receipt::tx_id`] it forms the receipt identity `(block_seq,
    /// client id)` that makes recovery's receipt redelivery idempotent.
    pub block_seq: u64,
    /// One receipt per client transaction, sorted by `tx_id`.
    pub receipts: Vec<Receipt>,
    /// Execution counters.
    pub stats: BlockStats,
    /// Net wrapping delta per touched account, sorted by account.
    pub deltas: Vec<(u64, u32)>,
}

/// One transfer routed to a shard, in dense account indices — the unit
/// the plan can recompile at any thread count (round-robin parallel, or
/// single-threaded for the serial-irrevocable escalation path).
#[derive(Debug, Clone, Copy)]
struct Transfer {
    /// Client tx id, for receipt decoding.
    id: u64,
    /// Dense index of the debited account.
    from: usize,
    /// Dense index of the credited account.
    to: usize,
    /// Transfer amount.
    amount: u32,
}

/// One shard's routed transfers plus the dense account map.
struct ShardPlan {
    /// Dense index → account id, in first-touch order.
    accounts: Vec<u64>,
    /// Account id → dense index.
    index: FastMap<u64, usize>,
    /// Transfers routed here, in stream order.
    transfers: Vec<Transfer>,
}

impl ShardPlan {
    fn new() -> Self {
        ShardPlan {
            accounts: Vec::new(),
            index: FastMap::default(),
            transfers: Vec::new(),
        }
    }

    /// Dense index of `account`, allocating on first touch.
    fn index_of(&mut self, account: u64) -> usize {
        if let Some(&i) = self.index.get(&account) {
            return i;
        }
        let i = self.accounts.len();
        self.accounts.push(account);
        self.index.insert(account, i);
        i
    }

    /// Compiles the transfers into `threads` round-robin thread programs,
    /// plus the `(thread, begin_pc)` → client tx id map that decodes the
    /// machine's commit log back into receipts.
    fn programs(&self, threads: usize) -> (Vec<ThreadProgram>, FastMap<(u32, usize), u64>) {
        let mut thread_ops: Vec<Vec<Op>> = vec![Vec::new(); threads];
        let mut tx_of: FastMap<(u32, usize), u64> = FastMap::default();
        for (i, t) in self.transfers.iter().enumerate() {
            let thread = i % threads;
            let ops = &mut thread_ops[thread];
            tx_of.insert((thread as u32, ops.len()), t.id);
            ops.push(Op::Begin {
                ordered: None,
                // Lock word for the lock-based execution mode: stripe by the
                // debited account so independent transfers don't serialize.
                lock: VirtAddr::new(((t.from % 1024) * WORD_SIZE) as u64),
            });
            ops.push(Op::Rmw(addr_of(t.from), -(t.amount as i32)));
            ops.push(Op::Rmw(addr_of(t.to), t.amount as i32));
            ops.push(Op::End);
        }
        let programs = thread_ops
            .into_iter()
            .enumerate()
            .map(|(t, ops)| ThreadProgram::new(ProcessId(0), ThreadId(t as u32), ops))
            .collect();
        (programs, tx_of)
    }
}

/// Ledger word address of a dense account index. One account per 64-byte
/// block, so two accounts never share a conflict-detection unit: all
/// contention the bench measures is *true* Zipfian contention, not false
/// sharing from packing.
fn addr_of(idx: usize) -> VirtAddr {
    VirtAddr::new(DATA_BASE + (idx * BLOCK_SIZE) as u64)
}

/// Compiles the transfers of `block` into per-shard plans.
fn compile(cfg: &ServiceConfig, map: &ShardMap, block: &[ClientTx]) -> Vec<ShardPlan> {
    let mut plans: Vec<ShardPlan> = (0..cfg.shards).map(|_| ShardPlan::new()).collect();
    for tx in block.iter().filter(|t| !t.read_only) {
        let shard = map.owner(tx);
        let plan = &mut plans[shard];
        let from = plan.index_of(tx.from);
        let to = plan.index_of(tx.to);
        plan.transfers.push(Transfer {
            id: tx.id,
            from,
            to,
            amount: tx.amount,
        });
    }
    plans
}

/// Everything one shard's execution produced, including how degraded the
/// path to completion was.
struct ShardRun {
    receipts: Vec<Receipt>,
    commits: u64,
    aborts: u64,
    cycles: Cycle,
    deltas: Vec<(u64, u32)>,
    retries: u64,
    stalls: u64,
    escalated: bool,
    backoff_cycles: Cycle,
}

/// Backoff charged (in simulated cycles) before retry `attempt`.
fn retry_backoff(attempt: u32) -> Cycle {
    1024u64 << attempt.min(8)
}

/// Runs a closure with panic messages suppressed on this thread. Chaos
/// attempts die by design (resource-exhaustion panics are the containment
/// boundary under test); their backtraces are noise, not signal. The
/// wrapping hook is installed once, process-wide, and defers to the
/// previous hook for every thread that didn't opt in.
fn silence_panics<R>(f: impl FnOnce() -> R) -> R {
    use std::cell::Cell;
    use std::sync::Once;
    thread_local! {
        static SILENCED: Cell<bool> = const { Cell::new(false) };
    }
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SILENCED.with(|s| s.get()) {
                prev(info);
            }
        }));
    });
    SILENCED.with(|s| s.set(true));
    let r = f();
    SILENCED.with(|s| s.set(false));
    r
}

/// Mixes the chaos seed with the block salt, shard and attempt so every
/// attempt draws a distinct but reproducible storm (splitmix64 finalizer).
fn storm_seed(chaos: &ShardChaosConfig, shard: usize, attempt: u32) -> u64 {
    let mut z = chaos
        .seed
        .wrapping_add(chaos.salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((shard as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add((attempt as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Decodes a finished machine into receipts, counters and deltas.
fn decode_machine(
    machine: &Machine,
    plan: &ShardPlan,
    tx_of: &FastMap<(u32, usize), u64>,
    shard: usize,
) -> (Vec<Receipt>, u64, u64, Cycle, Vec<(u64, u32)>) {
    let stats = machine.stats();
    let mut receipts = Vec::with_capacity(plan.transfers.len());
    for (seq, c) in stats.commit_log.iter().enumerate() {
        let id = *tx_of
            .get(&(c.thread.0, c.begin_pc))
            .expect("every committed tx was compiled from a client tx");
        receipts.push(Receipt {
            tx_id: id,
            shard,
            status: ReceiptStatus::Committed {
                seq: seq as u64,
                at: c.at,
            },
        });
    }
    let deltas: Vec<(u64, u32)> = plan
        .accounts
        .iter()
        .enumerate()
        .map(|(i, &acct)| (acct, machine.read_committed(ProcessId(0), addr_of(i))))
        .filter(|&(_, d)| d != 0)
        .collect();
    (receipts, stats.commits, stats.aborts, stats.cycles, deltas)
}

/// Machine config sized to the shard's ledger footprint.
fn shard_machine_cfg(cfg: &ServiceConfig, plan: &ShardPlan) -> ptm_sim::MachineConfig {
    let mut mcfg = cfg.machine;
    // Ledger pages actually touched, plus generous room for backend
    // metadata (shadow blocks, TAV nodes). Sizing frames to the block's
    // footprint instead of the account space is what lets the service
    // front a multi-million-account ledger with tiny shard machines.
    let data_pages = (plan.accounts.len() * BLOCK_SIZE).div_ceil(PAGE_SIZE);
    mcfg.mem_frames = (data_pages * 4 + 64).max(128);
    mcfg
}

/// Runs one compiled shard and decodes its commit log into receipts.
///
/// Fault-free shards run the strategy's executor directly. Under
/// [`ShardChaosConfig`] the shard runs inside an isolation boundary:
/// abort storms and resource squeezes are injected per attempt, an
/// attempt that panics (exhaustion) or blows its cycle budget (stall) is
/// retried after exponential backoff with the budget doubled, and a shard
/// that exhausts its retries escalates to serial-irrevocable execution —
/// one thread, no faults, guaranteed to terminate. A stormed shard
/// degrades (slower, counted in [`BlockStats`]); it never takes the block
/// down with it and never deadlocks the pipeline.
fn run_shard(cfg: &ServiceConfig, shard: usize, plan: &ShardPlan, parallel: bool) -> ShardRun {
    let mcfg = shard_machine_cfg(cfg, plan);
    let (programs, tx_of) = plan.programs(cfg.threads_per_shard);

    let Some(chaos) = cfg.chaos else {
        let machine: Machine = if parallel {
            run_parallel(mcfg, cfg.kind, programs, &cfg.exec).0
        } else {
            run(mcfg, cfg.kind, programs)
        };
        let (receipts, commits, aborts, cycles, deltas) =
            decode_machine(&machine, plan, &tx_of, shard);
        return ShardRun {
            receipts,
            commits,
            aborts,
            cycles,
            deltas,
            retries: 0,
            stalls: 0,
            escalated: false,
            backoff_cycles: 0,
        };
    };

    // Chaos always drives the sequential fault runner: fault injection is
    // defined on the canonical interleaved schedule, not on the epoch
    // executor. Still deterministic — same cfg, same block, same storms.
    let ops: u64 = plan.transfers.len() as u64 * 4;
    let horizon = ops * 8 + 256;
    let mut retries = 0u64;
    let mut stalls = 0u64;
    let mut backoff_cycles: Cycle = 0;
    for attempt in 0..=chaos.max_retries {
        let budget = chaos.cycle_budget.saturating_mul(1 << attempt.min(16));
        let fplan =
            FaultPlan::shard_storm(storm_seed(&chaos, shard, attempt), horizon, chaos.events);
        let programs = programs.clone();
        let outcome = silence_panics(|| {
            catch_unwind(AssertUnwindSafe(|| {
                run_with_faults(mcfg, cfg.kind, programs, &fplan)
            }))
        });
        match outcome {
            Ok(machine) if machine.stats().cycles <= budget => {
                let (receipts, commits, aborts, cycles, deltas) =
                    decode_machine(&machine, plan, &tx_of, shard);
                return ShardRun {
                    receipts,
                    commits,
                    aborts,
                    cycles: cycles + backoff_cycles,
                    deltas,
                    retries,
                    stalls,
                    escalated: false,
                    backoff_cycles,
                };
            }
            Ok(_) => {
                // Finished but over budget: a stalled shard. Back off and
                // retry with the budget doubled.
                stalls += 1;
            }
            Err(_) => {
                // The storm exhausted the shard (bounded-retry panic in the
                // machine). The machine is gone; the transfers are not —
                // they re-run on the next attempt.
            }
        }
        retries += 1;
        backoff_cycles += retry_backoff(attempt);
    }

    // Escalation: serial-irrevocable. One thread, no faults — no aborts
    // possible from contention, no squeeze to exhaust, always terminates.
    let (serial_programs, serial_tx_of) = plan.programs(1);
    let machine = run(mcfg, cfg.kind, serial_programs);
    let (receipts, commits, aborts, cycles, deltas) =
        decode_machine(&machine, plan, &serial_tx_of, shard);
    ShardRun {
        receipts,
        commits,
        aborts,
        cycles: cycles + backoff_cycles,
        deltas,
        retries,
        stalls,
        escalated: true,
        backoff_cycles,
    }
}

/// Executes one block of client transactions against `balances` (the
/// state as of the previous block boundary) and returns receipts, stats
/// and the ledger deltas to fold forward.
///
/// This is the synchronous core the ingest loop, the tests and the bench
/// all share; it is a pure function of `(cfg, block, balances)` except
/// for the `wall_ns` stat.
pub fn run_block(
    cfg: &ServiceConfig,
    block: &[ClientTx],
    balances: &FastMap<u64, u32>,
) -> BlockOutcome {
    let start = Instant::now();
    let map = ShardMap::new(cfg.shards, cfg.accounts);
    let mut stats = BlockStats {
        txs: block.len(),
        shard_txs: vec![0; cfg.shards],
        ..BlockStats::default()
    };
    let mut receipts = Vec::with_capacity(block.len());

    // Read-only fast path: answered from the balance table, never
    // compiled into a shard machine.
    for tx in block {
        if tx.read_only {
            stats.read_only_hits += 1;
            receipts.push(Receipt {
                tx_id: tx.id,
                shard: map.owner(tx),
                status: ReceiptStatus::ReadOnly {
                    balance: balances.get(&tx.from).copied().unwrap_or(0),
                },
            });
        } else {
            stats.transfers += 1;
            stats.shard_txs[map.owner(tx)] += 1;
            if map.is_cross_shard(tx) {
                stats.cross_shard += 1;
            }
        }
    }

    let mut deltas: Vec<(u64, u32)> = Vec::new();
    match cfg.strategy {
        Strategy::ValidateOnly => {
            for tx in block.iter().filter(|t| !t.read_only) {
                let ok = tx.from < cfg.accounts
                    && tx.to < cfg.accounts
                    && tx.from != tx.to
                    && tx.amount > 0;
                receipts.push(Receipt {
                    tx_id: tx.id,
                    shard: map.owner(tx),
                    status: ReceiptStatus::Validated { ok },
                });
            }
        }
        Strategy::Sequential | Strategy::Parallel => {
            let parallel = matches!(cfg.strategy, Strategy::Parallel);
            let plans = compile(cfg, &map, block);
            let mut fold: FastMap<u64, u32> = FastMap::default();
            for (shard, plan) in plans.iter().enumerate() {
                if plan.transfers.is_empty() {
                    continue;
                }
                let run = run_shard(cfg, shard, plan, parallel);
                receipts.extend(run.receipts);
                stats.commits += run.commits;
                stats.aborts += run.aborts;
                stats.max_shard_cycles = stats.max_shard_cycles.max(run.cycles);
                stats.shard_retries += run.retries;
                stats.shard_stalls += run.stalls;
                stats.shard_escalations += run.escalated as u64;
                stats.shard_backoff_cycles += run.backoff_cycles;
                for (acct, d) in run.deltas {
                    let e = fold.entry(acct).or_insert(0);
                    *e = e.wrapping_add(d);
                }
            }
            deltas = fold.into_iter().collect();
            deltas.sort_unstable();
        }
    }

    stats.shard_skew = shard_skew(&stats.shard_txs, stats.transfers, cfg.shards);

    receipts.sort_unstable_by_key(|r| r.tx_id);
    stats.wall_ns = start.elapsed().as_nanos() as u64;
    BlockOutcome {
        block_seq: 0,
        receipts,
        stats,
        deltas,
    }
}

/// Load imbalance: max shard load over mean shard load (1.0 = even, 0.0
/// for a block with no transfers — an all-read-only block has no load to
/// skew). Total, never panics: the no-load case is the answer `0.0`, not
/// a precondition.
fn shard_skew(shard_txs: &[usize], transfers: usize, shards: usize) -> f64 {
    match shard_txs.iter().copied().filter(|&t| t > 0).max() {
        None => 0.0,
        Some(max) => {
            let mean = transfers as f64 / shards.max(1) as f64;
            max as f64 / mean
        }
    }
}

/// Folds a block's deltas into the balance table (wrapping ledger
/// arithmetic, matching the simulator's 32-bit words).
pub fn fold_deltas(balances: &mut FastMap<u64, u32>, deltas: &[(u64, u32)]) {
    for &(acct, d) in deltas {
        let e = balances.entry(acct).or_insert(0);
        *e = e.wrapping_add(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShardChaosConfig;
    use ptm_sim::FaultAction;
    use ptm_sim::FaultEvent;

    fn transfer(id: u64, from: u64, to: u64) -> ClientTx {
        ClientTx {
            id,
            from,
            to,
            amount: 5,
            read_only: false,
        }
    }

    fn probe(id: u64, from: u64) -> ClientTx {
        ClientTx {
            id,
            from,
            to: from,
            amount: 0,
            read_only: true,
        }
    }

    #[test]
    fn shard_skew_is_total_over_empty_loads() {
        // Satellite: the skew computation must not assume a non-empty load
        // vector — an all-read-only block has no transfers anywhere.
        assert_eq!(shard_skew(&[], 0, 4), 0.0);
        assert_eq!(shard_skew(&[0, 0, 0], 0, 3), 0.0);
        assert_eq!(shard_skew(&[4, 4], 8, 2), 1.0);
        assert_eq!(shard_skew(&[8, 0], 8, 2), 2.0);
    }

    #[test]
    fn all_read_only_block_reports_zero_skew_and_no_deltas() {
        let block: Vec<ClientTx> = (0..10).map(|i| probe(i, i * 7)).collect();
        let cfg = ServiceConfig::new(1_000, 4);
        let out = run_block(&cfg, &block, &FastMap::default());
        assert_eq!(out.stats.shard_skew, 0.0);
        assert_eq!(out.stats.transfers, 0);
        assert_eq!(out.stats.read_only_hits, 10);
        assert!(out.deltas.is_empty());
        assert_eq!(out.receipts.len(), 10);
    }

    #[test]
    fn chaos_block_is_deterministic_and_ledger_exact() {
        // Abort storms change the schedule, never the ledger: the deltas
        // of a stormed block match the fault-free run, and re-running the
        // same chaos config reproduces the block bit-for-bit (what
        // recovery's re-execution leans on).
        let block: Vec<ClientTx> = (0..120)
            .map(|i| transfer(i, (i * 13) % 500, (i * 29 + 3) % 500))
            .collect();
        let quiet = ServiceConfig::new(500, 2);
        let chaos = quiet.with_chaos(ShardChaosConfig {
            salt: 3,
            ..ShardChaosConfig::new(99)
        });
        let balances = FastMap::default();
        let base = run_block(&quiet, &block, &balances);
        let a = run_block(&chaos, &block, &balances);
        let b = run_block(&chaos, &block, &balances);
        assert_eq!(a.deltas, base.deltas, "storms never corrupt the ledger");
        assert_eq!(a.receipts.len(), base.receipts.len());
        assert_eq!(a.receipts, b.receipts, "chaos is deterministic");
        assert_eq!(a.stats.shard_retries, b.stats.shard_retries);
    }

    #[test]
    fn stalled_shard_escalates_to_serial_irrevocable() {
        // An absurd cycle budget makes every attempt a stall; the shard
        // must escalate (serial, fault-free) and still serve every tx.
        let block: Vec<ClientTx> = (0..60)
            .map(|i| transfer(i, (i * 7) % 200, (i * 11 + 1) % 200))
            .collect();
        let cfg = ServiceConfig::new(200, 1).with_chaos(ShardChaosConfig {
            cycle_budget: 1,
            max_retries: 1,
            ..ShardChaosConfig::new(5)
        });
        let out = run_block(&cfg, &block, &FastMap::default());
        assert_eq!(out.stats.shard_escalations, 1);
        assert_eq!(out.stats.shard_stalls, 2, "both attempts blew the budget");
        assert_eq!(out.stats.shard_retries, 2);
        assert!(out.stats.shard_backoff_cycles > 0);
        assert_eq!(out.receipts.len(), block.len(), "degraded, not dropped");
        let base = run_block(&ServiceConfig::new(200, 1), &block, &FastMap::default());
        assert_eq!(out.deltas, base.deltas, "escalation preserves the ledger");
    }

    #[test]
    fn exhaustion_panic_is_contained_to_the_attempt() {
        // A handcrafted unpaired squeeze (leave 0 frames, never release)
        // drives the machine into its bounded-retry exhaustion panic. The
        // chaos loop must catch it, burn the attempts, and escalate —
        // the caller sees a served block, not a poisoned thread.
        let block: Vec<ClientTx> = (0..40)
            .map(|i| transfer(i, (i * 3) % 64, (i * 5 + 1) % 64))
            .collect();
        let cfg = ServiceConfig::new(64, 1);
        let map = ShardMap::new(1, 64);
        let plans = compile(&cfg, &map, &block);
        let plan = &plans[0];
        let (programs, _) = plan.programs(cfg.threads_per_shard);
        let mut mcfg = shard_machine_cfg(&cfg, plan);
        // Starve the pool hard enough that the squeeze bites.
        mcfg.mem_frames = 24;
        let hostile = FaultPlan {
            events: vec![FaultEvent {
                step: 10,
                action: FaultAction::SqueezeMemory { leave: 0 },
            }],
        };
        let died = silence_panics(|| {
            catch_unwind(AssertUnwindSafe(|| {
                run_with_faults(mcfg, cfg.kind, programs, &hostile)
            }))
        });
        if died.is_err() {
            // The storm is lethal to a bare machine — now prove run_shard
            // survives the same class of weather via its catch_unwind.
            let chaotic = cfg.with_chaos(ShardChaosConfig {
                cycle_budget: u64::MAX / 2,
                ..ShardChaosConfig::new(5)
            });
            let out = run_block(&chaotic, &block, &FastMap::default());
            assert_eq!(out.receipts.len(), block.len());
        }
    }
}
