//! Block compilation and execution: a batch of client transactions
//! becomes per-shard thread programs, runs on fresh simulator machines,
//! and folds back into the service's balance table.

use crate::config::{ServiceConfig, Strategy};
use crate::shard::ShardMap;
use ptm_sim::{run, run_parallel, Machine, Op, ThreadProgram};
use ptm_types::{Cycle, FastMap, ProcessId, ThreadId, VirtAddr, BLOCK_SIZE, PAGE_SIZE, WORD_SIZE};
use ptm_workloads::ClientTx;
use std::time::Instant;

/// Base virtual address of the ledger words inside a shard machine.
const DATA_BASE: u64 = 0x10_000;

/// The service's answer for one client transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Receipt {
    /// Echo of [`ClientTx::id`].
    pub tx_id: u64,
    /// The shard that served the request.
    pub shard: usize,
    /// What happened.
    pub status: ReceiptStatus,
}

/// Outcome of one client transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiptStatus {
    /// The transfer committed on its shard machine. `seq` is its position
    /// in the shard's commit order, `at` the simulated commit cycle —
    /// together they pin the execution schedule, which is what the
    /// Sequential ≡ Parallel bit-identity check compares.
    Committed {
        /// Position in the shard's commit order.
        seq: u64,
        /// Simulated commit cycle.
        at: Cycle,
    },
    /// A read-only balance probe answered from the service's balance
    /// table without entering any shard machine (the frontend's
    /// read-only fast path).
    ReadOnly {
        /// The balance observed as of the previous block boundary.
        balance: u32,
    },
    /// Admission-checked only (the `ValidateOnly` strategy): `ok` is the
    /// well-formedness verdict, nothing executed.
    Validated {
        /// Whether the transaction passed admission checks.
        ok: bool,
    },
}

/// Per-block statistics, one entry of the bench's time series.
#[derive(Debug, Clone, Default)]
pub struct BlockStats {
    /// Client transactions in the block.
    pub txs: usize,
    /// Transfers that entered shard machines.
    pub transfers: usize,
    /// Read-only probes answered from the balance table.
    pub read_only_hits: u64,
    /// Transfers whose `from`/`to` fall in different key ranges (executed
    /// whole on the `from` owner; see crate docs).
    pub cross_shard: u64,
    /// Committed simulator transactions, summed over shards.
    pub commits: u64,
    /// Aborted-and-retried simulator transactions, summed over shards.
    pub aborts: u64,
    /// Transfers routed to each shard.
    pub shard_txs: Vec<usize>,
    /// Load imbalance: max shard load over mean shard load (1.0 = even).
    pub shard_skew: f64,
    /// Simulated cycles of the slowest shard machine.
    pub max_shard_cycles: Cycle,
    /// Host wall time spent executing the block.
    pub wall_ns: u64,
}

impl BlockStats {
    /// Aborts per attempted simulator transaction.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.commits + self.aborts;
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }
}

/// Everything a block execution produces: receipts in client-id order,
/// stats, and the net ledger deltas to fold into the balance table.
#[derive(Debug, Clone)]
pub struct BlockOutcome {
    /// One receipt per client transaction, sorted by `tx_id`.
    pub receipts: Vec<Receipt>,
    /// Execution counters.
    pub stats: BlockStats,
    /// Net wrapping delta per touched account, sorted by account.
    pub deltas: Vec<(u64, u32)>,
}

/// One shard's compiled programs plus the maps to decode its commit log.
struct ShardPlan {
    /// Dense index → account id, in first-touch order.
    accounts: Vec<u64>,
    /// Account id → dense index.
    index: FastMap<u64, usize>,
    /// Per-thread operation streams.
    thread_ops: Vec<Vec<Op>>,
    /// `(thread, begin_pc)` → client tx id, for receipt decoding.
    tx_of: FastMap<(u32, usize), u64>,
    /// Transfers routed here.
    txs: usize,
}

impl ShardPlan {
    fn new(threads: usize) -> Self {
        ShardPlan {
            accounts: Vec::new(),
            index: FastMap::default(),
            thread_ops: vec![Vec::new(); threads],
            tx_of: FastMap::default(),
            txs: 0,
        }
    }

    /// Dense index of `account`, allocating on first touch.
    fn index_of(&mut self, account: u64) -> usize {
        if let Some(&i) = self.index.get(&account) {
            return i;
        }
        let i = self.accounts.len();
        self.accounts.push(account);
        self.index.insert(account, i);
        i
    }
}

/// Ledger word address of a dense account index. One account per 64-byte
/// block, so two accounts never share a conflict-detection unit: all
/// contention the bench measures is *true* Zipfian contention, not false
/// sharing from packing.
fn addr_of(idx: usize) -> VirtAddr {
    VirtAddr::new(DATA_BASE + (idx * BLOCK_SIZE) as u64)
}

/// Compiles the transfers of `block` into per-shard thread programs.
fn compile(cfg: &ServiceConfig, map: &ShardMap, block: &[ClientTx]) -> Vec<ShardPlan> {
    let mut plans: Vec<ShardPlan> = (0..cfg.shards)
        .map(|_| ShardPlan::new(cfg.threads_per_shard))
        .collect();
    for tx in block.iter().filter(|t| !t.read_only) {
        let shard = map.owner(tx);
        let plan = &mut plans[shard];
        let from = plan.index_of(tx.from);
        let to = plan.index_of(tx.to);
        // Round-robin transfers over the shard's cores.
        let thread = plan.txs % cfg.threads_per_shard;
        plan.txs += 1;
        let ops = &mut plan.thread_ops[thread];
        let begin_pc = ops.len();
        plan.tx_of.insert((thread as u32, begin_pc), tx.id);
        ops.push(Op::Begin {
            ordered: None,
            // Lock word for the lock-based execution mode: stripe by the
            // debited account so independent transfers don't serialize.
            lock: VirtAddr::new(((from % 1024) * WORD_SIZE) as u64),
        });
        ops.push(Op::Rmw(addr_of(from), -(tx.amount as i32)));
        ops.push(Op::Rmw(addr_of(to), tx.amount as i32));
        ops.push(Op::End);
    }
    plans
}

/// Runs one compiled shard and decodes its commit log into receipts.
fn run_shard(
    cfg: &ServiceConfig,
    shard: usize,
    plan: &ShardPlan,
    parallel: bool,
) -> (Vec<Receipt>, u64, u64, Cycle, Vec<(u64, u32)>) {
    let programs: Vec<ThreadProgram> = plan
        .thread_ops
        .iter()
        .enumerate()
        .map(|(t, ops)| ThreadProgram::new(ProcessId(0), ThreadId(t as u32), ops.clone()))
        .collect();
    let mut mcfg = cfg.machine;
    // Ledger pages actually touched, plus generous room for backend
    // metadata (shadow blocks, TAV nodes). Sizing frames to the block's
    // footprint instead of the account space is what lets the service
    // front a multi-million-account ledger with tiny shard machines.
    let data_pages = (plan.accounts.len() * BLOCK_SIZE).div_ceil(PAGE_SIZE);
    mcfg.mem_frames = (data_pages * 4 + 64).max(128);
    let machine: Machine = if parallel {
        run_parallel(mcfg, cfg.kind, programs, &cfg.exec).0
    } else {
        run(mcfg, cfg.kind, programs)
    };
    let stats = machine.stats();
    let mut receipts = Vec::with_capacity(plan.txs);
    for (seq, c) in stats.commit_log.iter().enumerate() {
        let id = *plan
            .tx_of
            .get(&(c.thread.0, c.begin_pc))
            .expect("every committed tx was compiled from a client tx");
        receipts.push(Receipt {
            tx_id: id,
            shard,
            status: ReceiptStatus::Committed {
                seq: seq as u64,
                at: c.at,
            },
        });
    }
    let deltas: Vec<(u64, u32)> = plan
        .accounts
        .iter()
        .enumerate()
        .map(|(i, &acct)| (acct, machine.read_committed(ProcessId(0), addr_of(i))))
        .filter(|&(_, d)| d != 0)
        .collect();
    (receipts, stats.commits, stats.aborts, stats.cycles, deltas)
}

/// Executes one block of client transactions against `balances` (the
/// state as of the previous block boundary) and returns receipts, stats
/// and the ledger deltas to fold forward.
///
/// This is the synchronous core the ingest loop, the tests and the bench
/// all share; it is a pure function of `(cfg, block, balances)` except
/// for the `wall_ns` stat.
pub fn run_block(
    cfg: &ServiceConfig,
    block: &[ClientTx],
    balances: &FastMap<u64, u32>,
) -> BlockOutcome {
    let start = Instant::now();
    let map = ShardMap::new(cfg.shards, cfg.accounts);
    let mut stats = BlockStats {
        txs: block.len(),
        shard_txs: vec![0; cfg.shards],
        ..BlockStats::default()
    };
    let mut receipts = Vec::with_capacity(block.len());

    // Read-only fast path: answered from the balance table, never
    // compiled into a shard machine.
    for tx in block {
        if tx.read_only {
            stats.read_only_hits += 1;
            receipts.push(Receipt {
                tx_id: tx.id,
                shard: map.owner(tx),
                status: ReceiptStatus::ReadOnly {
                    balance: balances.get(&tx.from).copied().unwrap_or(0),
                },
            });
        } else {
            stats.transfers += 1;
            stats.shard_txs[map.owner(tx)] += 1;
            if map.is_cross_shard(tx) {
                stats.cross_shard += 1;
            }
        }
    }

    let mut deltas: Vec<(u64, u32)> = Vec::new();
    match cfg.strategy {
        Strategy::ValidateOnly => {
            for tx in block.iter().filter(|t| !t.read_only) {
                let ok = tx.from < cfg.accounts
                    && tx.to < cfg.accounts
                    && tx.from != tx.to
                    && tx.amount > 0;
                receipts.push(Receipt {
                    tx_id: tx.id,
                    shard: map.owner(tx),
                    status: ReceiptStatus::Validated { ok },
                });
            }
        }
        Strategy::Sequential | Strategy::Parallel => {
            let parallel = matches!(cfg.strategy, Strategy::Parallel);
            let plans = compile(cfg, &map, block);
            let mut fold: FastMap<u64, u32> = FastMap::default();
            for (shard, plan) in plans.iter().enumerate() {
                if plan.txs == 0 {
                    continue;
                }
                let (rs, commits, aborts, cycles, ds) = run_shard(cfg, shard, plan, parallel);
                receipts.extend(rs);
                stats.commits += commits;
                stats.aborts += aborts;
                stats.max_shard_cycles = stats.max_shard_cycles.max(cycles);
                for (acct, d) in ds {
                    let e = fold.entry(acct).or_insert(0);
                    *e = e.wrapping_add(d);
                }
            }
            deltas = fold.into_iter().collect();
            deltas.sort_unstable();
        }
    }

    let loaded: Vec<usize> = stats.shard_txs.iter().copied().filter(|&t| t > 0).collect();
    stats.shard_skew = if loaded.is_empty() {
        0.0
    } else {
        let max = *loaded.iter().max().expect("non-empty") as f64;
        let mean = stats.transfers as f64 / cfg.shards as f64;
        max / mean
    };

    receipts.sort_unstable_by_key(|r| r.tx_id);
    stats.wall_ns = start.elapsed().as_nanos() as u64;
    BlockOutcome {
        receipts,
        stats,
        deltas,
    }
}

/// Folds a block's deltas into the balance table (wrapping ledger
/// arithmetic, matching the simulator's 32-bit words).
pub fn fold_deltas(balances: &mut FastMap<u64, u32>, deltas: &[(u64, u32)]) {
    for &(acct, d) in deltas {
        let e = balances.entry(acct).or_insert(0);
        *e = e.wrapping_add(d);
    }
}
