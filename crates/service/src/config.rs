//! Service tuning knobs.

use ptm_sim::{ExecutorConfig, MachineConfig, SystemKind};
use std::time::Duration;

/// How a block's shard machines are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// `Machine::run`: the deterministic sequential core loop.
    Sequential,
    /// `Machine::run_parallel`: the speculative epoch executor,
    /// bit-identical results to `Sequential` by construction — the
    /// service bench asserts this on every cell.
    Parallel,
    /// Admission checks only; nothing executes and no state changes.
    /// Useful to measure frontend overhead and as a dry-run mode.
    ValidateOnly,
}

impl Strategy {
    /// Stable label for stats and bench output.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Sequential => "sequential",
            Strategy::Parallel => "parallel",
            Strategy::ValidateOnly => "validate-only",
        }
    }
}

/// Frontend configuration: account space, sharding, execution strategy
/// and admission knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Size of the account space (ids `0..accounts`).
    pub accounts: u64,
    /// Independent shard machines; accounts partition by key range.
    pub shards: usize,
    /// Simulated cores per shard machine.
    pub threads_per_shard: usize,
    /// Backend each shard machine runs (default: the paper's PTM-Select).
    pub kind: SystemKind,
    /// Execution strategy for shard machines.
    pub strategy: Strategy,
    /// Epoch-executor knobs, used by [`Strategy::Parallel`].
    pub exec: ExecutorConfig,
    /// Shard machine template; `mem_frames` is resized per block.
    pub machine: MachineConfig,
    /// Admission: a block is sealed as soon as it holds this many
    /// transactions.
    pub max_batch: usize,
    /// Admission: a non-empty partial block is sealed after waiting this
    /// long for more arrivals.
    pub batch_deadline: Duration,
}

impl ServiceConfig {
    /// Defaults for an `accounts`-sized ledger over `shards` shards.
    pub fn new(accounts: u64, shards: usize) -> Self {
        ServiceConfig {
            accounts,
            shards,
            threads_per_shard: 4,
            kind: SystemKind::SelectPtm(Default::default()),
            strategy: Strategy::Sequential,
            exec: ExecutorConfig {
                threads: 2,
                epoch_cycles: ExecutorConfig::DEFAULT_EPOCH_CYCLES,
            },
            machine: MachineConfig::default(),
            max_batch: 256,
            batch_deadline: Duration::from_millis(5),
        }
    }

    /// Same config with a different strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }
}
