//! Service tuning knobs.

use ptm_core::durability::ForcePolicy;
use ptm_mem::logdev::{LogDevConfig, LogFaultPlan};
use ptm_sim::{ExecutorConfig, MachineConfig, SystemKind};
use std::time::Duration;

/// How a block's shard machines are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// `Machine::run`: the deterministic sequential core loop.
    Sequential,
    /// `Machine::run_parallel`: the speculative epoch executor,
    /// bit-identical results to `Sequential` by construction — the
    /// service bench asserts this on every cell.
    Parallel,
    /// Admission checks only; nothing executes and no state changes.
    /// Useful to measure frontend overhead and as a dry-run mode.
    ValidateOnly,
}

impl Strategy {
    /// Stable label for stats and bench output.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Sequential => "sequential",
            Strategy::Parallel => "parallel",
            Strategy::ValidateOnly => "validate-only",
        }
    }
}

/// Ingest-journal configuration: the force policy plus the log device the
/// journal writes through. `None` on [`ServiceConfig::journal`] keeps the
/// pre-journal volatile frontend (acks mean nothing across a crash).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalConfig {
    /// When block commit records are forced durable. Accepts become
    /// durably acked at the same force points (group commit).
    pub policy: ForcePolicy,
    /// Device geometry and latencies.
    pub dev: LogDevConfig,
    /// Device fault injection (seed 0 = fault-free).
    pub faults: LogFaultPlan,
}

impl JournalConfig {
    /// Eager forcing over a zero-cost, fault-free device — the journal
    /// configuration whose receipts must be bit-identical to a volatile
    /// run.
    pub fn zero_cost_eager() -> Self {
        JournalConfig {
            policy: ForcePolicy::Eager,
            dev: LogDevConfig::zero_cost(),
            faults: LogFaultPlan::none(),
        }
    }

    /// Same journal with a different force policy.
    pub fn with_policy(mut self, policy: ForcePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Same journal with a different device fault plan.
    pub fn with_faults(mut self, faults: LogFaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

/// Shard-chaos configuration: seed-driven abort storms and resource
/// squeezes injected into shard machines, plus the containment knobs
/// (cycle budget, bounded retries) that keep a stormed shard from taking
/// the block down with it. `None` on [`ServiceConfig::chaos`] runs shards
/// fault-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardChaosConfig {
    /// Base seed for the per-shard fault plans.
    pub seed: u64,
    /// Fault events injected per shard attempt.
    pub events: usize,
    /// Simulated-cycle budget for the first attempt at a shard; doubles
    /// per retry so a stormed shard degrades (slower, counted) instead of
    /// wedging the pipeline.
    pub cycle_budget: u64,
    /// Faulted attempts before escalating to serial-irrevocable execution
    /// (one thread, no faults — always terminates).
    pub max_retries: u32,
    /// Mixed into the per-shard seed; the pipeline sets it to the block
    /// sequence number so every (block, shard, attempt) draws a distinct
    /// but reproducible storm.
    pub salt: u64,
}

impl ShardChaosConfig {
    /// A storm plan from `seed` with containment defaults.
    pub fn new(seed: u64) -> Self {
        ShardChaosConfig {
            seed,
            events: 12,
            cycle_budget: 2_000_000,
            max_retries: 3,
            salt: 0,
        }
    }
}

/// Frontend configuration: account space, sharding, execution strategy
/// and admission knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Size of the account space (ids `0..accounts`).
    pub accounts: u64,
    /// Independent shard machines; accounts partition by key range.
    pub shards: usize,
    /// Simulated cores per shard machine.
    pub threads_per_shard: usize,
    /// Backend each shard machine runs (default: the paper's PTM-Select).
    pub kind: SystemKind,
    /// Execution strategy for shard machines.
    pub strategy: Strategy,
    /// Epoch-executor knobs, used by [`Strategy::Parallel`].
    pub exec: ExecutorConfig,
    /// Shard machine template; `mem_frames` is resized per block.
    pub machine: MachineConfig,
    /// Admission: a block is sealed as soon as it holds this many
    /// transactions.
    pub max_batch: usize,
    /// Admission: a non-empty partial block is sealed after waiting this
    /// long for more arrivals.
    pub batch_deadline: Duration,
    /// Overload shedding: client transactions admitted but not yet folded.
    /// [`crate::Service::submit`] rejects with `Busy { retry_after }` at
    /// this depth instead of queueing unboundedly.
    pub queue_depth: usize,
    /// Durable ingest journal; `None` = volatile frontend.
    pub journal: Option<JournalConfig>,
    /// Shard fault injection; `None` = fault-free shards.
    pub chaos: Option<ShardChaosConfig>,
}

impl ServiceConfig {
    /// Defaults for an `accounts`-sized ledger over `shards` shards.
    pub fn new(accounts: u64, shards: usize) -> Self {
        ServiceConfig {
            accounts,
            shards,
            threads_per_shard: 4,
            kind: SystemKind::SelectPtm(Default::default()),
            strategy: Strategy::Sequential,
            exec: ExecutorConfig {
                threads: 2,
                epoch_cycles: ExecutorConfig::DEFAULT_EPOCH_CYCLES,
            },
            machine: MachineConfig::default(),
            max_batch: 256,
            batch_deadline: Duration::from_millis(5),
            queue_depth: 4096,
            journal: None,
            chaos: None,
        }
    }

    /// Same config with a different strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Same config with a durable ingest journal.
    pub fn with_journal(mut self, journal: JournalConfig) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Same config with shard fault injection.
    pub fn with_chaos(mut self, chaos: ShardChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }
}
