//! The ingest loop: a worker thread that accepts a stream of client
//! transactions, journals and seals them into blocks under the admission
//! knobs, and executes each block through the configured strategy.
//!
//! Admission seals a block when either trigger fires:
//! - **size**: the batch reaches [`ServiceConfig::max_batch`], or
//! - **deadline**: the batch is non-empty and no new transaction arrived
//!   within [`ServiceConfig::batch_deadline`].
//!
//! Shutdown (dropping the submit side) flushes the final partial block,
//! so every accepted transaction gets a receipt.
//!
//! # Backpressure
//!
//! The submit queue is bounded by [`ServiceConfig::queue_depth`]:
//! transactions admitted but not yet folded into a block count as
//! in-flight, and [`Service::submit`] rejects with [`SubmitError::Busy`]
//! — carrying a `retry_after` hint sized to the backlog — instead of
//! queueing unboundedly. An overloaded service degrades to shedding with
//! honest retry hints; it never falls over and never lies about an
//! accepted transaction.
//!
//! # Fault containment
//!
//! The worker thread is a fault boundary: if it dies (a bug, or a
//! poisoned transaction driven into a panic), [`Service::shutdown`]
//! returns [`ServiceError::WorkerPanicked`] with the panic message
//! instead of propagating the panic into the caller's thread.

use crate::block::BlockOutcome;
use crate::config::ServiceConfig;
use crate::journal::JournalStats;
use crate::pipeline::Engine;
use ptm_workloads::ClientTx;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Totals accumulated over a service's lifetime, returned by
/// [`Service::shutdown`].
#[derive(Debug, Clone, Default)]
pub struct ServiceReport {
    /// Blocks executed.
    pub blocks: u64,
    /// Client transactions served (receipts issued).
    pub txs: u64,
    /// Committed simulator transactions across all blocks and shards.
    pub commits: u64,
    /// Aborted-and-retried simulator transactions.
    pub aborts: u64,
    /// Read-only probes answered on the fast path.
    pub read_only_hits: u64,
    /// Simulated cycles of the slowest shard, summed over blocks — the
    /// work metric the service-chaos trajectory gates on.
    pub shard_cycles: u64,
    /// Final non-zero balances, sorted by account.
    pub balances: Vec<(u64, u32)>,
    /// Submissions shed with `Busy` by the bounded queue.
    pub shed: u64,
    /// Client transactions durably acked by the journal (0 without one).
    pub acked_txs: u64,
    /// Shard attempts retried after a fault.
    pub shard_retries: u64,
    /// Shard attempts that blew their cycle budget.
    pub shard_stalls: u64,
    /// Shards that escalated to serial-irrevocable execution.
    pub shard_escalations: u64,
    /// Blocks that completed degraded (any retry or escalation).
    pub degraded_blocks: u64,
    /// Journal counters, when the service ran with one.
    pub journal: Option<JournalStats>,
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full. Retry no sooner than `retry_after`
    /// (sized to the backlog: roughly the time the worker needs to drain
    /// enough blocks to make room).
    Busy {
        /// Backlog-proportional retry hint.
        retry_after: Duration,
    },
    /// The service has shut down; nothing will ever be admitted again.
    Closed,
}

/// Why a shutdown did not return a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The ingest worker died; the payload is the panic message. Accepted
    /// transactions up to the death are recoverable from the journal (if
    /// one was configured) exactly as after a crash.
    WorkerPanicked(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::WorkerPanicked(msg) => write!(f, "ingest worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A running PTM-as-a-service frontend.
///
/// Submissions are accepted from any thread holding the handle; sealed
/// block outcomes stream back in order on [`Service::outcomes`].
pub struct Service {
    submit: Option<Sender<ClientTx>>,
    outcomes: Receiver<BlockOutcome>,
    worker: Option<JoinHandle<ServiceReport>>,
    /// Transactions admitted but not yet folded into a delivered block.
    inflight: Arc<AtomicUsize>,
    shed: Arc<AtomicU64>,
    queue_depth: usize,
    max_batch: usize,
    batch_deadline: Duration,
}

impl Service {
    /// Starts the ingest worker.
    pub fn start(cfg: ServiceConfig) -> Self {
        let (submit, rx) = mpsc::channel::<ClientTx>();
        let (out_tx, outcomes) = mpsc::channel::<BlockOutcome>();
        let inflight = Arc::new(AtomicUsize::new(0));
        let worker_inflight = Arc::clone(&inflight);
        let worker = thread::spawn(move || ingest_loop(cfg, rx, out_tx, worker_inflight));
        Service {
            submit: Some(submit),
            outcomes,
            worker: Some(worker),
            inflight,
            shed: Arc::new(AtomicU64::new(0)),
            queue_depth: cfg.queue_depth,
            max_batch: cfg.max_batch,
            batch_deadline: cfg.batch_deadline,
        }
    }

    /// Submits one client transaction through the bounded queue.
    pub fn submit(&self, tx: ClientTx) -> Result<(), SubmitError> {
        let Some(s) = &self.submit else {
            return Err(SubmitError::Closed);
        };
        let backlog = self.inflight.load(Ordering::Relaxed);
        if backlog >= self.queue_depth {
            self.shed.fetch_add(1, Ordering::Relaxed);
            // The worker drains roughly one max_batch-sized block per
            // deadline; size the hint to the number of blocks queued
            // ahead, so honest clients back off proportionally.
            let blocks_ahead = (backlog / self.max_batch.max(1) + 1) as u32;
            return Err(SubmitError::Busy {
                retry_after: self.batch_deadline.saturating_mul(blocks_ahead),
            });
        }
        match s.send(tx) {
            Ok(()) => {
                self.inflight.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(_) => Err(SubmitError::Closed),
        }
    }

    /// Transactions admitted but not yet folded into a delivered block.
    pub fn backlog(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Submissions shed with `Busy` so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Block outcomes, in execution order.
    pub fn outcomes(&self) -> &Receiver<BlockOutcome> {
        &self.outcomes
    }

    /// Closes the submit side, flushes the final partial block, joins the
    /// worker and returns lifetime totals. Unread outcomes remain
    /// readable on [`Service::outcomes`] until `self` drops.
    ///
    /// A worker that died mid-service surfaces as
    /// [`ServiceError::WorkerPanicked`] instead of poisoning the calling
    /// thread.
    ///
    /// # Panics
    ///
    /// Panics on a second call.
    pub fn shutdown(&mut self) -> Result<ServiceReport, ServiceError> {
        self.submit.take();
        match self.worker.take().expect("shutdown runs once").join() {
            Ok(mut report) => {
                report.shed = self.shed.load(Ordering::Relaxed);
                Ok(report)
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                Err(ServiceError::WorkerPanicked(msg))
            }
        }
    }
}

fn ingest_loop(
    cfg: ServiceConfig,
    rx: Receiver<ClientTx>,
    out: Sender<BlockOutcome>,
    inflight: Arc<AtomicUsize>,
) -> ServiceReport {
    let mut engine = Engine::new(cfg, None);
    let mut open = true;

    // The engine is crash-plan-free here, so its pipeline methods cannot
    // fail; the worker thread *itself* is the fault boundary (see
    // `ServiceError::WorkerPanicked`).
    let deliver = |outcome: Option<BlockOutcome>| {
        if let Some(outcome) = outcome {
            inflight.fetch_sub(outcome.stats.txs, Ordering::Relaxed);
            // The receiver side may have been dropped (caller only wants
            // the final report); executing was still required for the
            // balances.
            let _ = out.send(outcome);
        }
    };

    while open {
        // Fill greedily from whatever is already queued, then wait out
        // the deadline for stragglers. The engine seals on size by
        // itself; the deadline and shutdown triggers flush explicitly.
        loop {
            match rx.try_recv() {
                Ok(tx) => {
                    let sealed = engine.accept(tx).expect("no crash plan");
                    let full = sealed.is_some();
                    deliver(sealed);
                    if full {
                        break;
                    }
                }
                Err(TryRecvError::Empty) => match rx.recv_timeout(cfg.batch_deadline) {
                    Ok(tx) => {
                        let sealed = engine.accept(tx).expect("no crash plan");
                        let full = sealed.is_some();
                        deliver(sealed);
                        if full {
                            break;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => {
                        open = false;
                        break;
                    }
                },
                Err(TryRecvError::Disconnected) => {
                    open = false;
                    break;
                }
            }
        }
        deliver(engine.flush().expect("no crash plan"));
    }

    engine.finish().expect("no crash plan")
}
