//! The ingest loop: a worker thread that accepts a stream of client
//! transactions, seals them into blocks under the admission knobs, and
//! executes each block through the configured strategy.
//!
//! Admission seals a block when either trigger fires:
//! - **size**: the batch reaches [`ServiceConfig::max_batch`], or
//! - **deadline**: the batch is non-empty and no new transaction arrived
//!   within [`ServiceConfig::batch_deadline`].
//!
//! Shutdown (dropping the submit side) flushes the final partial block,
//! so every accepted transaction gets a receipt.

use crate::block::{fold_deltas, BlockOutcome};
use crate::config::ServiceConfig;
use ptm_types::FastMap;
use ptm_workloads::ClientTx;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::thread::{self, JoinHandle};

/// Totals accumulated over a service's lifetime, returned by
/// [`Service::shutdown`].
#[derive(Debug, Clone, Default)]
pub struct ServiceReport {
    /// Blocks executed.
    pub blocks: u64,
    /// Client transactions served (receipts issued).
    pub txs: u64,
    /// Committed simulator transactions across all blocks and shards.
    pub commits: u64,
    /// Aborted-and-retried simulator transactions.
    pub aborts: u64,
    /// Read-only probes answered on the fast path.
    pub read_only_hits: u64,
    /// Final non-zero balances, sorted by account.
    pub balances: Vec<(u64, u32)>,
}

/// A running PTM-as-a-service frontend.
///
/// Submissions are accepted from any thread holding the handle; sealed
/// block outcomes stream back in order on [`Service::outcomes`].
pub struct Service {
    submit: Option<Sender<ClientTx>>,
    outcomes: Receiver<BlockOutcome>,
    worker: Option<JoinHandle<ServiceReport>>,
}

impl Service {
    /// Starts the ingest worker.
    pub fn start(cfg: ServiceConfig) -> Self {
        let (submit, rx) = mpsc::channel::<ClientTx>();
        let (out_tx, outcomes) = mpsc::channel::<BlockOutcome>();
        let worker = thread::spawn(move || ingest_loop(cfg, rx, out_tx));
        Service {
            submit: Some(submit),
            outcomes,
            worker: Some(worker),
        }
    }

    /// Submits one client transaction. Returns `false` if the service
    /// has already shut down.
    pub fn submit(&self, tx: ClientTx) -> bool {
        match &self.submit {
            Some(s) => s.send(tx).is_ok(),
            None => false,
        }
    }

    /// Block outcomes, in execution order.
    pub fn outcomes(&self) -> &Receiver<BlockOutcome> {
        &self.outcomes
    }

    /// Closes the submit side, flushes the final partial block, joins the
    /// worker and returns lifetime totals. Unread outcomes remain
    /// readable on [`Service::outcomes`] until `self` drops.
    pub fn shutdown(mut self) -> ServiceReport {
        self.submit.take();
        self.worker
            .take()
            .expect("shutdown runs once")
            .join()
            .expect("ingest worker must not panic")
    }
}

fn ingest_loop(
    cfg: ServiceConfig,
    rx: Receiver<ClientTx>,
    out: Sender<BlockOutcome>,
) -> ServiceReport {
    let executor = cfg.strategy.executor();
    let mut balances: FastMap<u64, u32> = FastMap::default();
    let mut report = ServiceReport::default();
    let mut batch: Vec<ClientTx> = Vec::with_capacity(cfg.max_batch);
    let mut open = true;

    let flush = |batch: &mut Vec<ClientTx>,
                 balances: &mut FastMap<u64, u32>,
                 report: &mut ServiceReport| {
        if batch.is_empty() {
            return;
        }
        let outcome = executor.execute(&cfg, batch, balances);
        fold_deltas(balances, &outcome.deltas);
        report.blocks += 1;
        report.txs += outcome.stats.txs as u64;
        report.commits += outcome.stats.commits;
        report.aborts += outcome.stats.aborts;
        report.read_only_hits += outcome.stats.read_only_hits;
        // The receiver side may have been dropped (caller only wants the
        // final report); executing is still required for the balances.
        let _ = out.send(outcome);
        batch.clear();
    };

    while open {
        // Fill greedily from whatever is already queued, then wait out
        // the deadline for stragglers.
        loop {
            match rx.try_recv() {
                Ok(tx) => {
                    batch.push(tx);
                    if batch.len() >= cfg.max_batch {
                        break;
                    }
                }
                Err(TryRecvError::Empty) => {
                    if batch.len() >= cfg.max_batch {
                        break;
                    }
                    match rx.recv_timeout(cfg.batch_deadline) {
                        Ok(tx) => {
                            batch.push(tx);
                            if batch.len() >= cfg.max_batch {
                                break;
                            }
                        }
                        Err(RecvTimeoutError::Timeout) => break,
                        Err(RecvTimeoutError::Disconnected) => {
                            open = false;
                            break;
                        }
                    }
                }
                Err(TryRecvError::Disconnected) => {
                    open = false;
                    break;
                }
            }
        }
        flush(&mut batch, &mut balances, &mut report);
    }

    let mut balances: Vec<(u64, u32)> = balances.into_iter().filter(|&(_, b)| b != 0).collect();
    balances.sort_unstable();
    report.balances = balances;
    report
}
