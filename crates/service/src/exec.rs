//! The executor abstraction: one object per [`Strategy`], all driving the
//! shared block core in [`crate::block`].

use crate::block::{run_block, BlockOutcome};
use crate::config::{ServiceConfig, Strategy};
use ptm_types::FastMap;
use ptm_workloads::ClientTx;

/// Executes one sealed block of client transactions.
///
/// Implementations must be pure functions of `(cfg, block, balances)` up
/// to wall-clock stats: given the same inputs, the receipts and deltas
/// must be bit-identical. The service bench leans on this to assert
/// `Sequential` ≡ `Parallel`.
pub trait TxExecutor: Send + Sync {
    /// Stable label for stats and bench output.
    fn label(&self) -> &'static str;

    /// Runs the block against the balance table as of the previous block
    /// boundary.
    fn execute(
        &self,
        cfg: &ServiceConfig,
        block: &[ClientTx],
        balances: &FastMap<u64, u32>,
    ) -> BlockOutcome;
}

/// [`Strategy::Sequential`]: shard machines run on the deterministic
/// sequential core loop.
pub struct SequentialExec;

/// [`Strategy::Parallel`]: shard machines run on the speculative epoch
/// executor (Block-STM-style), bit-identical to [`SequentialExec`].
pub struct ParallelExec;

/// [`Strategy::ValidateOnly`]: admission checks only.
pub struct ValidateOnlyExec;

impl TxExecutor for SequentialExec {
    fn label(&self) -> &'static str {
        Strategy::Sequential.label()
    }

    fn execute(
        &self,
        cfg: &ServiceConfig,
        block: &[ClientTx],
        balances: &FastMap<u64, u32>,
    ) -> BlockOutcome {
        let cfg = cfg.with_strategy(Strategy::Sequential);
        run_block(&cfg, block, balances)
    }
}

impl TxExecutor for ParallelExec {
    fn label(&self) -> &'static str {
        Strategy::Parallel.label()
    }

    fn execute(
        &self,
        cfg: &ServiceConfig,
        block: &[ClientTx],
        balances: &FastMap<u64, u32>,
    ) -> BlockOutcome {
        let cfg = cfg.with_strategy(Strategy::Parallel);
        run_block(&cfg, block, balances)
    }
}

impl TxExecutor for ValidateOnlyExec {
    fn label(&self) -> &'static str {
        Strategy::ValidateOnly.label()
    }

    fn execute(
        &self,
        cfg: &ServiceConfig,
        block: &[ClientTx],
        balances: &FastMap<u64, u32>,
    ) -> BlockOutcome {
        let cfg = cfg.with_strategy(Strategy::ValidateOnly);
        run_block(&cfg, block, balances)
    }
}

impl Strategy {
    /// The executor object for this strategy.
    pub fn executor(&self) -> &'static dyn TxExecutor {
        match self {
            Strategy::Sequential => &SequentialExec,
            Strategy::Parallel => &ParallelExec,
            Strategy::ValidateOnly => &ValidateOnlyExec,
        }
    }
}
