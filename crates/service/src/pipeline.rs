//! The deterministic service pipeline: accept → seal → execute → commit →
//! fold, with a step counter a crash plan can kill at any point.
//!
//! [`Engine`] is the synchronous core the threaded ingest worker and the
//! crash-sweep driver share. Every pipeline action advances a monotone
//! **step counter**; a [`ServiceCrashPlan`] names the step at which the
//! process dies, and [`Engine::capture`] freezes everything the crash
//! oracle needs: the journal's crash-boundary device image, the accepted
//! prefix, the durably-acked ids, and the receipts delivered before the
//! cut.
//!
//! [`recover`] is the other half: scan the journal image ([`replay`]),
//! re-execute every sealed block in seal order ([`run_block`] is a pure
//! function, so re-execution regenerates bit-identical receipts), fold
//! each block's deltas **exactly once** — journaled deltas for committed
//! blocks (the durable truth, cross-checked against the re-execution),
//! freshly computed ones for blocks whose commit record didn't survive —
//! re-seal the accepted-but-unsealed tail as a final block, and force.
//! Recovery appends through the same reopened device, so recovering the
//! *recovered* image is a no-op modulo counters: recovery is idempotent,
//! and the crash sweep asserts it point by point.

use crate::block::{fold_deltas, run_block, BlockOutcome};
use crate::config::ServiceConfig;
use crate::ingest::ServiceReport;
use crate::journal::{replay, Journal, JournalStats};
use ptm_core::durability::ForcePolicy;
use ptm_mem::logdev::LogImage;
use ptm_types::FastMap;
use ptm_workloads::ClientTx;

/// Where the pipeline dies: the step counter value at which every further
/// pipeline action fails. Step indices count *pipeline actions* (accept,
/// seal, execute, commit, fold), not wall time, so a sweep over `at_step`
/// cuts the pipeline at every interesting boundary — mid-batch, between
/// seal and execute, between execute and commit, before the fold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceCrashPlan {
    /// The pipeline dies before performing step `at_step`.
    pub at_step: u64,
}

/// The pipeline crashed (a [`ServiceCrashPlan`] fired). Carries nothing:
/// the state of the dead process is read with [`Engine::capture`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crashed;

/// Everything the crash oracle sees at the crash boundary.
#[derive(Debug, Clone)]
pub struct ServiceCrashImage {
    /// The journal's device image: durable prefix plus whatever the fault
    /// plan decided about in-flight appends.
    pub journal: LogImage,
    /// The force policy the dead service ran.
    pub policy: ForcePolicy,
    /// The step counter at death.
    pub at_step: u64,
    /// Client transactions accepted (journaled and admitted) pre-crash,
    /// in submission order.
    pub accepted: Vec<ClientTx>,
    /// Client ids durably acked pre-crash (accept record behind a force).
    /// The oracle's hard set: these must all survive recovery.
    pub acked: Vec<u64>,
    /// Block outcomes delivered pre-crash, with their `block_seq` stamps.
    pub delivered: Vec<BlockOutcome>,
    /// Blocks whose commit records were force-covered pre-crash: recovery
    /// must find every one of them committed (no phantom receipts — a
    /// durable receipt is a receipt recovery regenerates identically).
    pub durable_blocks: Vec<u64>,
    /// Volatile pre-crash balances (sorted, non-zero) — what the ledger
    /// *would* have been; recovery is allowed to lose the un-journaled
    /// suffix of this, never to invent state beyond it.
    pub balances: Vec<(u64, u32)>,
}

/// The synchronous pipeline engine.
pub struct Engine {
    cfg: ServiceConfig,
    journal: Option<Journal>,
    balances: FastMap<u64, u32>,
    batch: Vec<ClientTx>,
    next_block_seq: u64,
    report: ServiceReport,
    step: u64,
    crash_at: Option<u64>,
    /// Accepted txs in submission order (oracle bookkeeping).
    accepted: Vec<ClientTx>,
    /// Outcomes delivered so far (oracle bookkeeping; drained by the
    /// worker as it forwards them).
    delivered: Vec<BlockOutcome>,
    /// `(block_seq, journal records at commit)` — a block is durable once
    /// a force covers its last commit chunk.
    commit_marks: Vec<(u64, u64)>,
}

impl Engine {
    /// A fresh engine; `crash` arms the step-indexed kill switch.
    pub fn new(cfg: ServiceConfig, crash: Option<ServiceCrashPlan>) -> Self {
        Engine {
            journal: cfg.journal.map(Journal::new),
            cfg,
            balances: FastMap::default(),
            batch: Vec::new(),
            next_block_seq: 0,
            report: ServiceReport::default(),
            step: 0,
            crash_at: crash.map(|c| c.at_step),
            accepted: Vec::new(),
            delivered: Vec::new(),
            commit_marks: Vec::new(),
        }
    }

    /// The step counter (pipeline actions performed so far).
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Advances the step counter, or dies if the crash plan says so.
    fn tick(&mut self) -> Result<(), Crashed> {
        if let Some(at) = self.crash_at {
            if self.step >= at {
                return Err(Crashed);
            }
        }
        self.step += 1;
        Ok(())
    }

    /// Accepts one client transaction: journals it, admits it to the open
    /// batch, and seals-and-executes the batch if it reached
    /// [`ServiceConfig::max_batch`]. Returns the block outcome when this
    /// accept sealed one.
    pub fn accept(&mut self, tx: ClientTx) -> Result<Option<BlockOutcome>, Crashed> {
        self.tick()?;
        if let Some(j) = &mut self.journal {
            j.accept(&tx);
        }
        self.accepted.push(tx);
        self.batch.push(tx);
        if self.batch.len() >= self.cfg.max_batch {
            self.flush()
        } else {
            Ok(None)
        }
    }

    /// Seals and executes the open batch (the deadline path of the ingest
    /// worker; the size path calls it from [`Engine::accept`]). No-op on
    /// an empty batch.
    pub fn flush(&mut self) -> Result<Option<BlockOutcome>, Crashed> {
        if self.batch.is_empty() {
            return Ok(None);
        }
        // Seal: the batch becomes block `seq`; its membership is journaled
        // before anything executes.
        self.tick()?;
        let seq = self.next_block_seq;
        self.next_block_seq += 1;
        if let Some(j) = &mut self.journal {
            j.seal(seq, self.batch.len() as u32);
        }
        // Execute: pure function of (cfg, block, balances); the chaos salt
        // is the block sequence so re-execution during recovery draws the
        // exact same storms.
        self.tick()?;
        let mut bcfg = self.cfg;
        if let Some(chaos) = &mut bcfg.chaos {
            chaos.salt = seq;
        }
        let mut outcome = run_block(&bcfg, &self.batch, &self.balances);
        outcome.block_seq = seq;
        // Commit: the block's redo deltas are journaled; a force here (per
        // policy) is the block's durability point.
        self.tick()?;
        if let Some(j) = &mut self.journal {
            j.commit(seq, &outcome.deltas);
            self.commit_marks.push((seq, j.records()));
        }
        // Fold: the deltas land in the balance table and the receipts are
        // released to the client.
        self.tick()?;
        fold_deltas(&mut self.balances, &outcome.deltas);
        self.batch.clear();
        self.report.blocks += 1;
        self.report.txs += outcome.stats.txs as u64;
        self.report.commits += outcome.stats.commits;
        self.report.aborts += outcome.stats.aborts;
        self.report.read_only_hits += outcome.stats.read_only_hits;
        self.report.shard_cycles += outcome.stats.max_shard_cycles;
        self.report.shard_retries += outcome.stats.shard_retries;
        self.report.shard_stalls += outcome.stats.shard_stalls;
        self.report.shard_escalations += outcome.stats.shard_escalations;
        if outcome.stats.shard_retries > 0 || outcome.stats.shard_escalations > 0 {
            self.report.degraded_blocks += 1;
        }
        self.delivered.push(outcome.clone());
        Ok(Some(outcome))
    }

    /// Flushes the final partial batch, forces the journal (every accept
    /// becomes durably acked — clean shutdown loses nothing) and returns
    /// the lifetime report.
    pub fn finish(&mut self) -> Result<ServiceReport, Crashed> {
        self.flush()?;
        if let Some(j) = &mut self.journal {
            j.force();
            self.report.acked_txs = j.stats().acked_txs;
            self.report.journal = Some(*j.stats());
        }
        let mut balances: Vec<(u64, u32)> = self
            .balances
            .iter()
            .map(|(&a, &b)| (a, b))
            .filter(|&(_, b)| b != 0)
            .collect();
        balances.sort_unstable();
        self.report.balances = balances;
        Ok(self.report.clone())
    }

    /// Freezes the dead process for the crash oracle. Only meaningful
    /// after a method returned [`Crashed`]; requires a journal (a crash
    /// plan without a journal has nothing to recover from).
    pub fn capture(self) -> ServiceCrashImage {
        let journal = self
            .journal
            .expect("crash capture requires a journaled service");
        let forced = journal.forced_records();
        let mut balances: Vec<(u64, u32)> = self
            .balances
            .iter()
            .map(|(&a, &b)| (a, b))
            .filter(|&(_, b)| b != 0)
            .collect();
        balances.sort_unstable();
        ServiceCrashImage {
            policy: journal.policy(),
            at_step: self.step,
            accepted: self.accepted,
            acked: journal.acked().to_vec(),
            delivered: self.delivered,
            durable_blocks: self
                .commit_marks
                .iter()
                .filter(|&&(_, mark)| mark <= forced)
                .map(|&(seq, _)| seq)
                .collect(),
            balances,
            journal: journal.crash_image(),
        }
    }
}

/// How a crash-planned run ended.
#[derive(Debug)]
pub enum CrashRun {
    /// The plan never fired; the service shut down cleanly.
    Completed(ServiceReport),
    /// The plan fired; here is the dead process.
    Crashed(ServiceCrashImage),
}

/// Drives `stream` through an engine under `crash`, sealing on batch size
/// (the deterministic driver has no wall clock, so the deadline trigger
/// never fires — partial batches seal at shutdown).
pub fn run_stream_with_crash(
    cfg: ServiceConfig,
    stream: &[ClientTx],
    crash: Option<ServiceCrashPlan>,
) -> CrashRun {
    let mut engine = Engine::new(cfg, crash);
    for tx in stream {
        if engine.accept(*tx).is_err() {
            return CrashRun::Crashed(engine.capture());
        }
    }
    match engine.finish() {
        Ok(report) => CrashRun::Completed(report),
        Err(Crashed) => CrashRun::Crashed(engine.capture()),
    }
}

/// Recovery counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Journal records in the scan-valid, replay-coherent prefix.
    pub records_scanned: u64,
    /// Frames discarded at the scan cut (torn appends, holes).
    pub records_discarded: u64,
    /// Discarded frames that failed their checksum.
    pub checksum_mismatches: u64,
    /// Bytes past the valid prefix.
    pub bytes_discarded: u64,
    /// Structurally valid frames with journal-level nonsense (replay
    /// truncates there).
    pub malformed_records: u64,
    /// Committed blocks whose journaled deltas were folded (re-executed
    /// only to regenerate receipts).
    pub blocks_replayed: u64,
    /// Sealed-but-uncommitted blocks recovery executed and committed.
    pub blocks_reexecuted: u64,
    /// Accepted-but-unsealed tail transactions re-sealed into a final
    /// block (zero when the tail was empty).
    pub tail_txs: u64,
    /// Client transactions recovered end to end (every one has a receipt).
    pub txs_recovered: u64,
    /// Committed blocks whose re-executed deltas differed from the
    /// journaled ones. Always zero — `run_block` is pure — and asserted
    /// zero by the sweep; counted rather than panicked so the bench can
    /// report it.
    pub delta_mismatches: u64,
}

/// A recovered service: balances, regenerated receipts, and the reopened
/// journal (so a second crash-recover cycle can be tested against this
/// one — idempotence).
#[derive(Debug)]
pub struct ServiceRecovery {
    /// Final balances (sorted, non-zero) after folding every recovered
    /// block exactly once.
    pub balances: Vec<(u64, u32)>,
    /// One outcome per recovered block, in seal order, `block_seq`
    /// stamped; committed blocks' receipts are bit-identical to the ones
    /// the dead service delivered.
    pub outcomes: Vec<BlockOutcome>,
    /// Counters.
    pub report: RecoveryReport,
    journal: Journal,
}

impl ServiceRecovery {
    /// The post-recovery journal image: recovering *this* must reproduce
    /// the same balances and outcomes (idempotence).
    pub fn crash_image(&self) -> LogImage {
        self.journal.crash_image()
    }

    /// Journal counters for recovery's own appends.
    pub fn journal_stats(&self) -> &JournalStats {
        self.journal.stats()
    }
}

/// Recovers a journaled service from a crash-boundary device image. See
/// the module docs for the protocol; the invariants it restores:
///
/// 1. **Committed prefix**: the recovered transactions are exactly the
///    scan-valid prefix of the submission order — nothing reordered,
///    nothing invented.
/// 2. **Exactly-once fold**: each block's deltas land in the balance
///    table once — journaled deltas if the commit record survived,
///    re-computed ones otherwise (then re-committed, so the *next*
///    recovery replays instead of re-executing).
/// 3. **Idempotent receipts**: receipts carry `(block_seq, client id)`;
///    re-delivery after recovery regenerates committed blocks' receipts
///    bit-identically, so a client that already saw them learns nothing
///    new.
pub fn recover(cfg: &ServiceConfig, image: &LogImage) -> ServiceRecovery {
    let rep = replay(&image.bytes);
    let jcfg = cfg
        .journal
        .expect("recovery requires the journal configuration the service ran with");
    let mut journal = Journal::reopen(jcfg, image.bytes[..rep.valid_len].to_vec(), rep.records);
    let mut report = RecoveryReport {
        records_scanned: rep.records,
        records_discarded: rep.records_discarded,
        checksum_mismatches: rep.checksum_mismatches,
        bytes_discarded: rep.bytes_discarded,
        malformed_records: rep.malformed_records,
        ..RecoveryReport::default()
    };
    let mut balances: FastMap<u64, u32> = FastMap::default();
    let mut outcomes = Vec::with_capacity(rep.blocks.len() + 1);

    let execute = |seq: u64, txs: &[ClientTx], balances: &FastMap<u64, u32>| {
        let mut bcfg = *cfg;
        if let Some(chaos) = &mut bcfg.chaos {
            chaos.salt = seq;
        }
        let mut outcome = run_block(&bcfg, txs, balances);
        outcome.block_seq = seq;
        outcome
    };

    for block in &rep.blocks {
        let outcome = execute(block.seq, &block.txs, &balances);
        match &block.deltas {
            Some(journaled) => {
                // The journal is the durable truth; the re-execution is a
                // cross-check (and the receipt source).
                if &outcome.deltas != journaled {
                    report.delta_mismatches += 1;
                }
                fold_deltas(&mut balances, journaled);
                report.blocks_replayed += 1;
            }
            None => {
                journal.commit(block.seq, &outcome.deltas);
                fold_deltas(&mut balances, &outcome.deltas);
                report.blocks_reexecuted += 1;
            }
        }
        report.txs_recovered += block.txs.len() as u64;
        outcomes.push(outcome);
    }

    if !rep.tail.is_empty() {
        let seq = rep.next_block_seq;
        journal.seal(seq, rep.tail.len() as u32);
        let outcome = execute(seq, &rep.tail, &balances);
        journal.commit(seq, &outcome.deltas);
        fold_deltas(&mut balances, &outcome.deltas);
        report.tail_txs = rep.tail.len() as u64;
        report.txs_recovered += rep.tail.len() as u64;
        outcomes.push(outcome);
    }

    journal.force();
    let mut final_balances: Vec<(u64, u32)> =
        balances.into_iter().filter(|&(_, b)| b != 0).collect();
    final_balances.sort_unstable();
    ServiceRecovery {
        balances: final_balances,
        outcomes,
        report,
        journal,
    }
}
