//! Quickstart: build a 4-core machine, run a synthetic transactional
//! workload under Select-PTM, and print what happened.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use unbounded_ptm::sim::{assert_serializable, run, SystemKind};
use unbounded_ptm::workloads::synthetic;

fn main() {
    let workload = synthetic::quickstart();
    let programs = workload.programs();

    let machine = run(
        workload.machine_config(),
        SystemKind::SelectPtm(Default::default()),
        workload.programs(),
    );

    println!("system        : {}", machine.kind());
    println!("machine stats : {}", machine.stats());
    if let Some(ptm) = machine.backend().as_ptm() {
        println!("ptm stats     :\n{}", ptm.stats());
    }
    println!("bus           : {}", machine.bus_stats());

    // Every run is checked for value-level serializability against a serial
    // replay in commit order.
    assert_serializable(&machine, &programs);
    println!("\nserializability check: OK");
}
