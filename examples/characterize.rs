//! Characterize a workload the way Table 1 does: run it under Select-PTM
//! and report its transactional, system and memory behaviour.
//!
//! ```text
//! cargo run --example characterize -- ocean
//! cargo run --example characterize -- water
//! ```

use unbounded_ptm::sim::{run, SystemKind};
use unbounded_ptm::workloads::{by_name, Scale};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "radix".to_owned());
    let Some(w) = by_name(&name, Scale::Small) else {
        eprintln!("unknown workload '{name}'; try fft, lu, radix, ocean, water");
        std::process::exit(1);
    };

    let m = run(
        w.machine_config(),
        SystemKind::SelectPtm(Default::default()),
        w.programs(),
    );
    let s = m.stats();
    let k = m.kernel_stats();
    let ptm = m.backend().as_ptm().expect("select-ptm run").stats();

    println!("workload: {}", w.name);
    println!("-- transactions --");
    println!("  commits            : {}", s.commits);
    println!("  aborts             : {}", s.aborts);
    println!("-- system --");
    println!("  exceptions         : {}", k.exceptions);
    println!("  context switches   : {}", k.context_switches);
    println!("  tlb misses         : {}", k.tlb_misses);
    println!("  minor faults       : {}", k.minor_faults);
    println!("-- memory --");
    println!("  pages              : {}", s.pages.len());
    println!("  pg-x-wr            : {}", s.tx_write_pages.len());
    println!(
        "  conservative       : {:.1}%",
        s.conservative_overhead() * 100.0
    );
    println!("  mem ops            : {}", s.mem_ops);
    println!("  l2 evictions       : {}", s.l2_evictions);
    println!("  mop/evict          : {:.1}", s.mops_per_evict());
    println!("-- ptm --");
    println!(
        "  overflows          : {} (clean {} / dirty {})",
        ptm.overflows(),
        ptm.clean_overflows,
        ptm.dirty_overflows
    );
    println!(
        "  shadow pages       : alloc {} / free {} / peak {}",
        ptm.shadow_allocs, ptm.shadow_frees, ptm.peak_shadow_pages
    );
    println!("  selection toggles  : {}", ptm.selection_toggles);
    println!(
        "  spt cache hit rate : {}/{}",
        ptm.spt_cache_hits,
        ptm.spt_cache_hits + ptm.spt_cache_misses
    );
    println!("  cycles             : {}", s.cycles);
}
