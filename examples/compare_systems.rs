//! Run one workload under every execution mode — serial baseline, locks,
//! VTM, VC-VTM, Copy-PTM, Select-PTM — and compare cycles, speedup and
//! abort behaviour side by side (a one-workload slice of Figure 4).
//!
//! ```text
//! cargo run --example compare_systems -- water
//! ```

use unbounded_ptm::sim::{run, serialize_programs, speedup_percent, SystemKind};
use unbounded_ptm::workloads::{by_name, Scale};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "water".to_owned());
    let Some(w) = by_name(&name, Scale::Small) else {
        eprintln!("unknown workload '{name}'; try fft, lu, radix, ocean, water");
        std::process::exit(1);
    };

    let cfg = w.machine_config();
    let serial = run(
        cfg,
        SystemKind::Serial,
        serialize_programs(&w.programs_for(SystemKind::Serial)),
    );
    let serial_cycles = serial.stats().cycles;
    println!(
        "workload: {} | single-thread baseline: {serial_cycles} cycles\n",
        w.name
    );
    println!(
        "{:<14} {:>12} {:>10} {:>9} {:>9}",
        "system", "cycles", "speedup", "commits", "aborts"
    );

    for kind in SystemKind::figure4() {
        let m = run(cfg, kind, w.programs_for(kind));
        println!(
            "{:<14} {:>12} {:>9.0}% {:>9} {:>9}",
            kind.label(),
            m.stats().cycles,
            speedup_percent(serial_cycles, m.stats().cycles),
            m.stats().commits,
            m.stats().aborts
        );
    }
}
