//! Ordered transactions for thread-level speculation (§2.2): a loop with a
//! possible carried dependency is parallelized by giving each iteration an
//! ordered transaction — iterations run concurrently but *commit* in
//! program order, so the sequential semantics are preserved.
//!
//! Here each iteration reads a running value, transforms it, and stores it
//! back — a genuine loop-carried dependency through `acc`.
//!
//! ```text
//! cargo run --example ordered_loop
//! ```

use unbounded_ptm::sim::{run, Op, OrderedSeq, SystemKind, ThreadProgram};
use unbounded_ptm::types::{ProcessId, ThreadId, VirtAddr};

const ITERATIONS: u64 = 32;
const ACC: u64 = 0x10_0000;
const LOG_BASE: u64 = 0x20_0000;

fn main() {
    // Iteration i runs on thread i % 4; all commit in iteration order.
    let programs: Vec<ThreadProgram> = (0..4u64)
        .map(|t| {
            let mut ops = Vec::new();
            for i in (t..ITERATIONS).step_by(4) {
                ops.push(Op::Begin {
                    ordered: Some(OrderedSeq { group: 0, seq: i }),
                    lock: VirtAddr::new(0x30_0000),
                });
                // acc += i  (the carried dependency)
                ops.push(Op::Rmw(VirtAddr::new(ACC), i as i32));
                // log[i] = i (independent work the speculation overlaps)
                ops.push(Op::Write(VirtAddr::new(LOG_BASE + i * 4), i as u32));
                ops.push(Op::Compute(120));
                ops.push(Op::End);
            }
            ThreadProgram::new(ProcessId(0), ThreadId(t as u32), ops)
        })
        .collect();

    let machine = run(
        Default::default(),
        SystemKind::SelectPtm(Default::default()),
        programs,
    );

    let acc = machine.read_committed(ProcessId(0), VirtAddr::new(ACC));
    let expected: u64 = (0..ITERATIONS).sum();
    println!("accumulated value : {acc} (sequential semantics demand {expected})");
    println!(
        "commits={} aborts={} cycles={}",
        machine.stats().commits,
        machine.stats().aborts,
        machine.stats().cycles
    );
    assert_eq!(u64::from(acc), expected);

    // The commit log must be in iteration order even though four threads
    // raced through the loop.
    let seqs: Vec<u64> = machine.stats().commit_log.iter().map(|c| c.at).collect();
    assert!(
        seqs.windows(2).all(|w| w[0] <= w[1]),
        "commit log is time-ordered"
    );
    println!("ordered commit verified over {} transactions", ITERATIONS);
}
