//! The headline virtualization demo: one machine, one run, and the
//! transaction survives everything the paper promises it survives —
//! cache overflow, a page swapped out (home *and* shadow co-swapped),
//! context switches with thread migration, and a second process poking the
//! same physical page.
//!
//! ```text
//! cargo run --example virtualization
//! ```

use unbounded_ptm::cache::CacheConfig;
use unbounded_ptm::sim::{run, Machine, MachineConfig, Op, SystemKind, ThreadProgram};
use unbounded_ptm::types::{ProcessId, ThreadId, VirtAddr};

fn begin(lock: u64) -> Op {
    Op::Begin {
        ordered: None,
        lock: VirtAddr::new(lock),
    }
}

fn main() {
    // --- 1. Overflow + migration -----------------------------------------
    let big = 0x40_0000u64;
    let mut ops = vec![begin(0x100)];
    for blk in 0..64u64 {
        ops.push(Op::Rmw(VirtAddr::new(big + blk * 64), 1));
        ops.push(Op::Compute(100));
    }
    ops.push(Op::End);
    let worker = ThreadProgram::new(ProcessId(0), ThreadId(0), ops);
    let helper = ThreadProgram::new(
        ProcessId(0),
        ThreadId(1),
        vec![begin(0x140), Op::Rmw(VirtAddr::new(0x50_0000), 1), Op::End],
    );

    let mut cfg = MachineConfig {
        l1: CacheConfig::tiny(2, 1),
        l2: CacheConfig::tiny(4, 2), // force overflow
        ..MachineConfig::default()
    };
    cfg.kernel.cs_interval = Some(1_000); // frequent switches...
    cfg.kernel.migrate_on_cs = true; // ...that also migrate the thread

    let m = run(
        cfg,
        SystemKind::SelectPtm(Default::default()),
        vec![worker, helper],
    );
    let ptm = m.backend().as_ptm().unwrap().stats();
    println!("— one transaction, 64 blocks, tiny caches, migrating switches —");
    println!("  context switches : {}", m.kernel_stats().context_switches);
    println!("  dirty overflows  : {}", ptm.dirty_overflows);
    println!("  shadow pages     : {} allocated", ptm.shadow_allocs);
    let ok =
        (0..64u64).all(|blk| m.read_committed(ProcessId(0), VirtAddr::new(big + blk * 64)) == 1);
    println!("  all 64 updates committed: {ok}");
    assert!(ok);
    assert!(ptm.dirty_overflows > 0);

    // --- 2. Paging of transactional pages ---------------------------------
    let data = VirtAddr::new(0x4000);
    let prog = ThreadProgram::new(
        ProcessId(0),
        ThreadId(0),
        vec![begin(0x100), Op::Rmw(data, 5), Op::End],
    );
    let mut m = Machine::new(
        MachineConfig::default(),
        SystemKind::SelectPtm(Default::default()),
        vec![prog],
    );
    let frame = m.prefault(ProcessId(0), data);
    let pa = unbounded_ptm::types::PhysAddr::from_frame(frame, data.page_offset());
    m.memory_mut().write_word(pa, 1000);
    m.force_swap_out(ProcessId(0), data.vpn());
    m.run();
    println!("\n— transaction over a swapped-out page —");
    println!("  major faults     : {}", m.kernel_stats().swap_ins);
    println!(
        "  final value      : {} (1000 swapped out + 5 transactional)",
        m.read_committed(ProcessId(0), data)
    );
    assert_eq!(m.read_committed(ProcessId(0), data), 1005);

    // --- 3. Inter-process physical sharing --------------------------------
    let va0 = VirtAddr::new(0x1000);
    let va1 = VirtAddr::new(0x9000);
    let t0 = ThreadProgram::new(
        ProcessId(0),
        ThreadId(0),
        vec![
            begin(0x100),
            Op::Rmw(va0, 1),
            Op::Compute(1500),
            Op::Rmw(va0, 1),
            Op::End,
        ],
    );
    let t1 = ThreadProgram::new(
        ProcessId(1),
        ThreadId(1),
        vec![Op::Compute(300), begin(0x140), Op::Rmw(va1, 10), Op::End],
    );
    let mut m = Machine::new(
        MachineConfig::default(),
        SystemKind::SelectPtm(Default::default()),
        vec![t0, t1],
    );
    let frame = m.prefault(ProcessId(0), va0);
    m.kernel_mut().map_shared(ProcessId(1), va1.vpn(), frame);
    m.run();
    println!("\n— two processes, one physical page —");
    println!(
        "  pid0 sees {}, pid1 sees {} (same word, conflicts detected physically)",
        m.read_committed(ProcessId(0), va0),
        m.read_committed(ProcessId(1), va1)
    );
    assert_eq!(
        m.read_committed(ProcessId(0), va0),
        m.read_committed(ProcessId(1), va1)
    );
    assert_eq!(m.read_committed(ProcessId(0), va0), 12);
    println!("\nall virtualization paths exercised successfully");
}
