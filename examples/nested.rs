//! Nested transactions (§2.3.1): PTM flattens inner transactions into the
//! outermost one — inner `Begin`/`End` just adjust a nesting counter, and an
//! inner abort rolls the *whole* outer transaction back.
//!
//! This example builds a transfer routine whose logging step is itself a
//! transaction (as a library function might be), nests it inside the
//! transfer transaction, and shows that atomicity covers the union.
//!
//! ```text
//! cargo run --example nested
//! ```

use unbounded_ptm::sim::{run, Op, SystemKind, ThreadProgram};
use unbounded_ptm::types::{ProcessId, ThreadId, VirtAddr};

const ACCOUNT_A: u64 = 0x10_0000;
const ACCOUNT_B: u64 = 0x10_0004;
const LOG_COUNT: u64 = 0x11_0000;

fn begin(lock: u64) -> Op {
    Op::Begin {
        ordered: None,
        lock: VirtAddr::new(lock),
    }
}

fn transfers(t: u32, n: usize) -> ThreadProgram {
    let mut ops = Vec::new();
    for _ in 0..n {
        // Outer transaction: move 1 from A to B...
        ops.push(begin(0x100));
        ops.push(Op::Rmw(VirtAddr::new(ACCOUNT_A), -1));
        // ...with a nested "audit log" transaction inside (flattened).
        ops.push(begin(0x140));
        ops.push(Op::Rmw(VirtAddr::new(LOG_COUNT), 1));
        ops.push(Op::End);
        ops.push(Op::Rmw(VirtAddr::new(ACCOUNT_B), 1));
        ops.push(Op::End);
        ops.push(Op::Compute(40));
    }
    ThreadProgram::new(ProcessId(0), ThreadId(t), ops)
}

fn main() {
    let per_thread = 50;
    let machine = run(
        Default::default(),
        SystemKind::SelectPtm(Default::default()),
        (0..4).map(|t| transfers(t, per_thread)).collect(),
    );

    let a = machine.read_committed(ProcessId(0), VirtAddr::new(ACCOUNT_A)) as i32;
    let b = machine.read_committed(ProcessId(0), VirtAddr::new(ACCOUNT_B)) as i32;
    let logged = machine.read_committed(ProcessId(0), VirtAddr::new(LOG_COUNT));

    println!("A = {a}, B = {b}, log entries = {logged}");
    println!(
        "commits = {} (one per OUTER transaction — inner begins are flattened)",
        machine.stats().commits
    );
    assert_eq!(a + b, 0, "transfer conserved");
    assert_eq!(
        b as u32, logged,
        "every transfer logged exactly once, atomically"
    );
    assert_eq!(machine.stats().commits as usize, 4 * per_thread);
    println!("nested atomicity holds: transfers and their log entries never diverge");
}
