//! Bank: the classic transactional-memory demo. Four tellers move money
//! between 256 accounts concurrently; transactions keep every transfer
//! atomic, so the total balance is conserved no matter how the transfers
//! interleave, abort, or overflow the caches.
//!
//! ```text
//! cargo run --example bank
//! ```

use unbounded_ptm::sim::{run, Op, SystemKind, ThreadProgram};
use unbounded_ptm::types::{ProcessId, ThreadId, VirtAddr};

const ACCOUNTS: u64 = 256;
const TRANSFERS_PER_TELLER: usize = 200;
const ACCOUNTS_BASE: u64 = 0x10_0000;
const LOCKS_BASE: u64 = 0x20_0000;

fn account(i: u64) -> VirtAddr {
    VirtAddr::new(ACCOUNTS_BASE + (i % ACCOUNTS) * 4)
}

fn teller(t: u32) -> ThreadProgram {
    // Deterministic pseudo-random pairs per teller.
    let mut state = 0x9e37_79b9u64 ^ u64::from(t) << 32;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut ops = Vec::new();
    for _ in 0..TRANSFERS_PER_TELLER {
        let from = next() % ACCOUNTS;
        let to = next() % ACCOUNTS;
        let amount = (next() % 90 + 1) as i32;
        ops.push(Op::Begin {
            ordered: None,
            // Fine-grained lock per source account for the lock baseline.
            lock: VirtAddr::new(LOCKS_BASE + (from % 64) * 64),
        });
        ops.push(Op::Rmw(account(from), -amount));
        ops.push(Op::Rmw(account(to), amount));
        ops.push(Op::End);
        ops.push(Op::Compute(15));
    }
    ThreadProgram::new(ProcessId(0), ThreadId(t), ops)
}

fn main() {
    for kind in [
        SystemKind::SelectPtm(Default::default()),
        SystemKind::CopyPtm,
        SystemKind::Vtm,
        SystemKind::Locks,
    ] {
        let machine = run(Default::default(), kind, (0..4).map(teller).collect());

        // Accounts start at 0; transfers only move money, so the grand
        // total must still be zero (mod 2^32 arithmetic).
        let total: u32 = (0..ACCOUNTS)
            .map(|i| machine.read_committed(ProcessId(0), account(i)))
            .fold(0u32, |acc, v| acc.wrapping_add(v));
        println!(
            "{:<12} cycles={:>10} commits={:>4} aborts={:>4} total-balance-delta={}",
            kind.label(),
            machine.stats().cycles,
            machine.stats().commits,
            machine.stats().aborts,
            total as i32
        );
        assert_eq!(total, 0, "{kind}: money was created or destroyed!");
    }
    println!("\nall systems conserved the total balance");
}
