//! Umbrella crate for the *Unbounded Page-Based Transactional Memory*
//! (ASPLOS 2006) reproduction.
//!
//! Re-exports the workspace crates under one roof:
//!
//! * [`core`] (`ptm-core`) — the paper's contribution: Copy-PTM and
//!   Select-PTM with SPT/SIT/TAV/T-State structures and the VTS caches;
//! * [`vtm`] — the VTM baseline (XADT, XF counting Bloom filter, XADC,
//!   Victim-VTM);
//! * [`sim`] — the execution-driven CMP simulator (cores, MOESI caches,
//!   bus/memory timing, OS model, lock baseline, serial reference checker);
//! * [`workloads`] — SPLASH-2-style kernels (fft, lu, radix, ocean, water)
//!   plus a synthetic generator;
//! * [`mem`], [`cache`], [`types`] — the substrates.
//!
//! # Quickstart
//!
//! ```
//! use unbounded_ptm::sim::{run, SystemKind};
//! use unbounded_ptm::workloads::{synthetic, Scale};
//!
//! let w = synthetic::quickstart();
//! let machine = run(
//!     w.machine_config(),
//!     SystemKind::SelectPtm(Default::default()),
//!     w.programs(),
//! );
//! assert!(machine.stats().commits > 0);
//! let _ = Scale::Small;
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries that regenerate every table and figure of the paper.

pub use ptm_cache as cache;
pub use ptm_core as core;
pub use ptm_mem as mem;
pub use ptm_sim as sim;
pub use ptm_types as types;
pub use ptm_vtm as vtm;
pub use ptm_workloads as workloads;
